package core_test

import (
	"context"
	"sync"
	"testing"

	"mssg/internal/cluster"
	"mssg/internal/core"
	"mssg/internal/gen"
	"mssg/internal/graph"
	_ "mssg/internal/graphdb/all"
	"mssg/internal/ingest"
	"mssg/internal/query"
)

// TestQueryCacheEndToEnd is the serving-tier cache acceptance test: a
// repeated identical query through a resident engine is served from the
// cache with the serial-reference answer, an ingest commit invalidates
// it (generation bump), and a placement epoch swap (Join) invalidates
// it again — each time the re-executed query matches a fresh sequential
// oracle. Run under -race (make tenants) the concurrent burst also
// proves cached results are safely shared across waiters.
func TestQueryCacheEndToEnd(t *testing.T) {
	edges, err := gen.Generate(gen.Config{Name: "qc", Vertices: 400, M: 3, HubFraction: 0.1, Seed: 31})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	half := edges[:len(edges)/2]

	holder, err := ingest.NewPlacementHolder("", ingest.Manifest{Committed: ingest.Placement{
		Policy: "rendezvous", Backends: 3, Replication: 1, Seed: 5,
		Nodes: []cluster.NodeID{0, 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.New(core.Config{
		Backends:  3,
		FrontEnds: 1,
		Backend:   "hashmap",
		Ingest:    ingest.Config{AddReverse: true},
		Placement: holder,
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	defer e.Close()
	if _, err := e.IngestEdges(half); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	qe, err := e.NewQueryEngine(query.EngineConfig{
		MaxInFlight: 4,
		QueueDepth:  64,
		CacheBytes:  1 << 20,
	})
	if err != nil {
		t.Fatalf("NewQueryEngine: %v", err)
	}
	defer qe.Close()

	cfg := query.BFSConfig{Source: 3, Dest: 111}
	oracle := func(es []graph.Edge) (bool, int32) {
		dist := refBFS(es, cfg.Source)
		lv, ok := dist[cfg.Dest]
		if !ok {
			return false, -1
		}
		return true, lv
	}
	check := func(stage string, q *query.Query, es []graph.Edge, wantHit bool) query.BFSResult {
		t.Helper()
		res, err := q.Wait()
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if q.CacheHit != wantHit {
			t.Fatalf("%s: CacheHit = %v, want %v", stage, q.CacheHit, wantHit)
		}
		r := res.(query.BFSResult)
		found, lv := oracle(es)
		if r.Found != found || (found && r.PathLength != lv) {
			t.Fatalf("%s: BFS = (%v,%d), oracle (%v,%d)", stage, r.Found, r.PathLength, found, lv)
		}
		return r
	}

	submit := func() *query.Query {
		q, err := e.SubmitBFSAs(context.Background(), qe, "alice", cfg)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		return q
	}

	r1 := check("cold", submit(), half, false)
	if r1.Generation == 0 {
		t.Fatal("result carries no pinned generation")
	}
	r2 := check("warm", submit(), half, true)
	if r2.Generation != r1.Generation || r2.PathLength != r1.PathLength {
		t.Fatalf("cached result diverged: %+v vs %+v", r2, r1)
	}

	// A concurrent burst of the identical query: every waiter gets the
	// serial-reference answer (shared cached value, -race clean).
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q, err := e.SubmitBFSAs(context.Background(), qe, "alice", cfg)
			if err != nil {
				t.Errorf("burst submit: %v", err)
				return
			}
			res, err := q.Wait()
			if err != nil {
				t.Errorf("burst: %v", err)
				return
			}
			if r := res.(query.BFSResult); r.PathLength != r1.PathLength || r.Found != r1.Found {
				t.Errorf("burst result (%v,%d) != reference (%v,%d)", r.Found, r.PathLength, r1.Found, r1.PathLength)
			}
		}()
	}
	wg.Wait()

	// Ingest commit: generation bumps, the cached entry stops matching
	// and is purged, and the re-executed query sees the new edges.
	if _, err := e.IngestEdges(edges[len(edges)/2:]); err != nil {
		t.Fatalf("second ingest: %v", err)
	}
	if n := qe.Cache().Len(); n != 0 {
		t.Fatalf("cache holds %d entries after ingest commit", n)
	}
	r3 := check("post-ingest", submit(), edges, false)
	if r3.Generation == r1.Generation {
		t.Fatal("generation did not advance across an ingest commit")
	}
	check("post-ingest warm", submit(), edges, true)

	// Epoch swap: joining the spare node commits epoch 1; the holder's
	// swap hook purges the cache and the same query re-executes against
	// the new placement — same answer, new epoch in the key.
	if _, err := e.Join(2, ingest.MigrationConfig{}); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if holder.Epoch() != 1 {
		t.Fatalf("epoch = %d after join, want 1", holder.Epoch())
	}
	if n := qe.Cache().Len(); n != 0 {
		t.Fatalf("cache holds %d entries after epoch swap", n)
	}
	check("post-join", submit(), edges, false)
	check("post-join warm", submit(), edges, true)

	st := qe.Stats()
	// warm + 16-query burst + post-ingest warm + post-join warm.
	if st.CacheHits != 19 {
		t.Fatalf("CacheHits = %d, want 19", st.CacheHits)
	}
	if st.Tenants["alice"].CacheHits != 19 {
		t.Fatalf("tenant cache hits = %d, want 19", st.Tenants["alice"].CacheHits)
	}
}
