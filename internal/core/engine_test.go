package core_test

import (
	"testing"

	"mssg/internal/cluster"
	"mssg/internal/core"
	"mssg/internal/gen"
	"mssg/internal/graph"
	_ "mssg/internal/graphdb/all"
	"mssg/internal/ingest"
	"mssg/internal/query"
)

// refBFS computes exact BFS distances on the undirected view of edges.
func refBFS(edges []graph.Edge, src graph.VertexID) map[graph.VertexID]int32 {
	adj := make(map[graph.VertexID][]graph.VertexID)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	dist := map[graph.VertexID]int32{src: 0}
	frontier := []graph.VertexID{src}
	for level := int32(1); len(frontier) > 0; level++ {
		var next []graph.VertexID
		for _, v := range frontier {
			for _, u := range adj[v] {
				if _, seen := dist[u]; !seen {
					dist[u] = level
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return dist
}

func testGraph(t *testing.T) []graph.Edge {
	t.Helper()
	edges, err := gen.Generate(gen.Config{Name: "t", Vertices: 600, M: 3, HubFraction: 0.1, Seed: 11})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return edges
}

func newEngine(t *testing.T, backend string, backends, frontends int) *core.Engine {
	t.Helper()
	e, err := core.New(core.Config{
		Backends:  backends,
		FrontEnds: frontends,
		Backend:   backend,
		Dir:       t.TempDir(),
		Ingest:    ingest.Config{AddReverse: true},
	})
	if err != nil {
		t.Fatalf("core.New(%s): %v", backend, err)
	}
	t.Cleanup(func() {
		if err := e.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	})
	return e
}

// TestEndToEndBFSMatchesReference is the headline integration test: for
// every backend, ingest through the full filter pipeline and check
// parallel BFS path lengths against a sequential oracle.
func TestEndToEndBFSMatchesReference(t *testing.T) {
	edges := testGraph(t)
	dist := refBFS(edges, 3)
	queries := [][2]graph.VertexID{{3, 4}, {3, 57}, {3, 599}, {3, 123}, {3, 3}}

	for _, backend := range []string{"array", "hashmap", "mysql", "bdb", "stream", "grdb"} {
		t.Run(backend, func(t *testing.T) {
			e := newEngine(t, backend, 4, 2)
			stats, err := e.IngestEdges(edges)
			if err != nil {
				t.Fatalf("ingest: %v", err)
			}
			if got, want := stats.EdgesIn.Load(), int64(len(edges)); got != want {
				t.Fatalf("EdgesIn = %d, want %d", got, want)
			}
			// Both orientations stored (AddReverse; generator emits no
			// self-loops for these parameters).
			if got := stats.EdgesStored.Load(); got != 2*int64(len(edges)) {
				t.Fatalf("EdgesStored = %d, want %d", got, 2*len(edges))
			}
			for _, q := range queries {
				res, err := e.BFS(query.BFSConfig{Source: q[0], Dest: q[1]})
				if err != nil {
					t.Fatalf("BFS %v: %v", q, err)
				}
				want, reachable := dist[q[1]]
				if q[0] == q[1] {
					want, reachable = 0, true
				}
				if res.Found != reachable {
					t.Fatalf("BFS %v Found = %v, want %v", q, res.Found, reachable)
				}
				if reachable && res.PathLength != want {
					t.Fatalf("BFS %v PathLength = %d, want %d", q, res.PathLength, want)
				}
			}
		})
	}
}

// TestPipelinedMatchesLevelSync compares Algorithm 2 against Algorithm 1
// on the same data.
func TestPipelinedMatchesLevelSync(t *testing.T) {
	edges := testGraph(t)
	e := newEngine(t, "grdb", 4, 1)
	if _, err := e.IngestEdges(edges); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	pairs := gen.RandomQueryPairs(edges, 600, 20, 77)
	for _, q := range pairs {
		a, err := e.BFS(query.BFSConfig{Source: q[0], Dest: q[1]})
		if err != nil {
			t.Fatalf("level-sync %v: %v", q, err)
		}
		b, err := e.BFS(query.BFSConfig{Source: q[0], Dest: q[1], Pipelined: true, Threshold: 8})
		if err != nil {
			t.Fatalf("pipelined %v: %v", q, err)
		}
		if a.Found != b.Found || a.PathLength != b.PathLength {
			t.Fatalf("query %v: level-sync (%v,%d) != pipelined (%v,%d)",
				q, a.Found, a.PathLength, b.Found, b.PathLength)
		}
	}
}

// TestEdgeGranularityBroadcast ingests with edge-level round-robin (no
// global mapping) and checks the engine forces broadcast BFS and still
// returns correct distances.
func TestEdgeGranularityBroadcast(t *testing.T) {
	edges := testGraph(t)
	dist := refBFS(edges, 3)
	e, err := core.New(core.Config{
		Backends:  4,
		FrontEnds: 1,
		Backend:   "hashmap",
		Ingest: ingest.Config{
			AddReverse: true,
			Policy:     func() ingest.Policy { return &ingest.EdgeRoundRobin{} },
		},
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	defer e.Close()
	if _, err := e.IngestEdges(edges); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	for _, dest := range []graph.VertexID{4, 57, 599} {
		// Ownership deliberately left at KnownMapping: the engine must
		// override it to broadcast because the policy is not mapped.
		res, err := e.BFS(query.BFSConfig{Source: 3, Dest: dest})
		if err != nil {
			t.Fatalf("BFS: %v", err)
		}
		if !res.Found || res.PathLength != dist[dest] {
			t.Fatalf("BFS 3->%d = (%v,%d), want (true,%d)", dest, res.Found, res.PathLength, dist[dest])
		}
	}
}

// TestExternalVisited runs BFS with the external-memory visited structure
// (the Figs 5.8/5.9 configuration).
func TestExternalVisited(t *testing.T) {
	edges := testGraph(t)
	dist := refBFS(edges, 3)
	e := newEngine(t, "grdb", 4, 1)
	if _, err := e.IngestEdges(edges); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	visitedDir := t.TempDir()
	res, err := e.BFS(query.BFSConfig{
		Source: 3, Dest: 599,
		NewVisited: func(n cluster.NodeID) (query.Visited, error) {
			return query.NewExtVisited(visitedDir+"/n"+string(rune('0'+int(n))), 0)
		},
	})
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	if !res.Found || res.PathLength != dist[599] {
		t.Fatalf("BFS = (%v,%d), want (true,%d)", res.Found, res.PathLength, dist[599])
	}
}

// TestTCPFabricEndToEnd runs the whole pipeline over loopback TCP.
func TestTCPFabricEndToEnd(t *testing.T) {
	edges := testGraph(t)
	dist := refBFS(edges, 3)
	e, err := core.New(core.Config{
		Backends:  3,
		FrontEnds: 2,
		Backend:   "hashmap",
		Fabric:    core.TCP,
		Ingest:    ingest.Config{AddReverse: true},
	})
	if err != nil {
		t.Fatalf("core.New TCP: %v", err)
	}
	defer e.Close()
	if _, err := e.IngestEdges(edges); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	res, err := e.BFS(query.BFSConfig{Source: 3, Dest: 599})
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	if !res.Found || res.PathLength != dist[599] {
		t.Fatalf("BFS over TCP = (%v,%d), want (true,%d)", res.Found, res.PathLength, dist[599])
	}
}

// TestRunAnalysis exercises the Query Service registry path.
func TestRunAnalysis(t *testing.T) {
	edges := testGraph(t)
	e := newEngine(t, "hashmap", 2, 1)
	if _, err := e.IngestEdges(edges); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	out, err := e.RunAnalysis("bfs", map[string]string{"source": "3", "dest": "57"})
	if err != nil {
		t.Fatalf("RunAnalysis: %v", err)
	}
	res, ok := out.(query.BFSResult)
	if !ok {
		t.Fatalf("RunAnalysis returned %T", out)
	}
	if !res.Found {
		t.Fatal("analysis BFS did not find destination")
	}
	if _, err := e.RunAnalysis("bfs", nil); err == nil {
		t.Fatal("RunAnalysis without params succeeded, want error")
	}
	if _, err := e.RunAnalysis("nope", nil); err == nil {
		t.Fatal("RunAnalysis of unknown analysis succeeded, want error")
	}
}

// TestMoreFrontEndsSameResult: ingesting with 1 vs 4 front-ends must
// produce identical graphs (same BFS answers).
func TestMoreFrontEndsSameResult(t *testing.T) {
	edges := testGraph(t)
	var results []query.BFSResult
	for _, fe := range []int{1, 4} {
		e := newEngine(t, "grdb", 4, fe)
		if _, err := e.IngestEdges(edges); err != nil {
			t.Fatalf("ingest fe=%d: %v", fe, err)
		}
		res, err := e.BFS(query.BFSConfig{Source: 3, Dest: 599})
		if err != nil {
			t.Fatalf("BFS fe=%d: %v", fe, err)
		}
		results = append(results, res)
	}
	if results[0].Found != results[1].Found || results[0].PathLength != results[1].PathLength {
		t.Fatalf("1 vs 4 front-ends disagree: %+v vs %+v", results[0], results[1])
	}
}

// TestEngineReturnPath exercises path reconstruction through the full
// engine stack on an out-of-core backend.
func TestEngineReturnPath(t *testing.T) {
	edges := testGraph(t)
	e := newEngine(t, "grdb", 4, 1)
	if _, err := e.IngestEdges(edges); err != nil {
		t.Fatal(err)
	}
	res, err := e.BFS(query.BFSConfig{Source: 3, Dest: 599, ReturnPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("destination not found")
	}
	if int32(len(res.Path))-1 != res.PathLength {
		t.Fatalf("path %v inconsistent with length %d", res.Path, res.PathLength)
	}
	if res.Path[0] != 3 || res.Path[len(res.Path)-1] != 599 {
		t.Fatalf("path endpoints wrong: %v", res.Path)
	}
	// Each hop must be a real undirected edge.
	adj := make(map[graph.Edge]bool)
	for _, e := range edges {
		adj[e] = true
		adj[e.Reverse()] = true
	}
	for i := 0; i+1 < len(res.Path); i++ {
		if !adj[graph.Edge{Src: res.Path[i], Dst: res.Path[i+1]}] {
			t.Fatalf("path uses non-edge %d->%d", res.Path[i], res.Path[i+1])
		}
	}
}
