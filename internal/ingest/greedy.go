package ingest

import (
	"sync"

	"mssg/internal/cluster"
	"mssg/internal/graph"
)

// GreedyCluster is the summary-based clustering policy sketched in paper
// §3.2: "these algorithms should keep some additional summary information
// about the data that has been already clustered and distributed ...
// [to] make more intelligent decisions on where to send blocked data."
//
// The summary here is a vertex→owner directory plus per-backend load
// counters. A vertex's first edge assigns its owner greedily: the
// backend that already owns the edge's other endpoint, unless that
// backend is overloaded relative to the lightest one, in which case the
// lightest backend wins. All later edges of the vertex follow its owner
// (vertex granularity), exactly the bookkeeping §3.2 calls for.
//
// GreedyCluster is stateful and must be shared by every ingest filter
// copy (return the same instance from Config.Policy); it is safe for
// concurrent use. After ingestion, OwnerOf serves as the vertex→node
// directory for the search phase (query.BFSConfig.OwnerOf).
type GreedyCluster struct {
	// Slack bounds imbalance: a backend may exceed the lightest load by
	// at most Slack edges before affinity is overridden. <= 0 means 4096.
	Slack int64

	mu    sync.Mutex
	owner map[graph.VertexID]cluster.NodeID
	load  []int64
}

// NewGreedyCluster returns a policy with the given balance slack.
func NewGreedyCluster(slack int64) *GreedyCluster {
	if slack <= 0 {
		slack = 4096
	}
	return &GreedyCluster{
		Slack: slack,
		owner: make(map[graph.VertexID]cluster.NodeID),
	}
}

// Name implements Policy.
func (g *GreedyCluster) Name() string { return "greedy-affinity" }

// GloballyMapped implements Policy: the mapping is not derivable from
// the vertex ID alone, but OwnerOf provides the directory, so searches
// still use routed (non-broadcast) fringe exchange.
func (g *GreedyCluster) GloballyMapped() bool { return true }

// Route implements Policy.
func (g *GreedyCluster) Route(e graph.Edge, backends int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.load) < backends {
		grown := make([]int64, backends)
		copy(grown, g.load)
		g.load = grown
	}
	if o, ok := g.owner[e.Src]; ok {
		g.load[o]++
		return int(o)
	}
	choice := g.lightestLocked(backends)
	if o, ok := g.owner[e.Dst]; ok {
		// Affinity: co-locate with the neighbour unless too imbalanced.
		if g.load[o] <= g.load[choice]+g.Slack {
			choice = int(o)
		}
	}
	g.owner[e.Src] = cluster.NodeID(choice)
	g.load[choice]++
	return int(choice)
}

func (g *GreedyCluster) lightestLocked(backends int) int {
	best := 0
	for i := 1; i < backends; i++ {
		if g.load[i] < g.load[best] {
			best = i
		}
	}
	return best
}

// OwnerOf is the post-ingestion vertex→node directory, suitable for
// query.BFSConfig.OwnerOf. Vertices never seen as an edge source map to
// node 0 (they have no stored adjacency anywhere, so any owner is
// correct — their adjacency is the empty set on every node).
func (g *GreedyCluster) OwnerOf(v graph.VertexID) cluster.NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.owner[v]
}

// DirectorySize returns the number of assigned vertices.
func (g *GreedyCluster) DirectorySize() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.owner)
}

// Loads returns a copy of the per-backend edge counts.
func (g *GreedyCluster) Loads() []int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int64, len(g.load))
	copy(out, g.load)
	return out
}

// DirectoryPolicy is implemented by policies that maintain an explicit
// vertex→node directory usable for search-phase fringe routing.
type DirectoryPolicy interface {
	Policy
	OwnerOf(v graph.VertexID) cluster.NodeID
}

var _ DirectoryPolicy = (*GreedyCluster)(nil)
