package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"mssg/internal/cluster"
	"mssg/internal/storage/fsutil"
)

// Manifest is the durable placement record: the committed placement every
// router obeys, plus — while a migration is in flight — the pending
// placement it is moving toward. A migration first persists its target as
// Pending (durable intent, so a crashed coordinator can resume or abort),
// then, after copy + catch-up + verify succeed, rewrites the manifest
// with Committed = former Pending. Both writes go through the atomic
// temp-file + rename path, so routing state flips in exactly one step.
type Manifest struct {
	Committed Placement
	// Pending is the in-flight migration's target (epoch Committed+1),
	// or nil when the topology is quiescent.
	Pending *Placement
}

// Placement-manifest magics. placementMagic ("MSSGPL01", PR 7) has no
// epoch, no member subset, and no pending slot; manifestMagic
// ("MSSGPL02") adds all three. The encoder emits the oldest magic that
// can represent the value, so quiescent epoch-0 directories stay
// readable by pre-elasticity binaries, and each accepted byte string has
// exactly one encoding (the fuzzer checks decode∘encode = id).
const (
	placementMagic = "MSSGPL01"
	manifestMagic  = "MSSGPL02"
)

// PlacementFile is the placement manifest's name under the database
// working directory.
const PlacementFile = "placement.mssg"

// v1Expressible reports whether m can be carried by the PR 7 codec:
// a quiescent, epoch-0 placement over the full node-ID space.
func v1Expressible(m Manifest) bool {
	return m.Pending == nil && m.Committed.Epoch == 0 && m.Committed.Nodes == nil
}

func appendPlacementBody(b []byte, p Placement) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Policy)))
	b = append(b, p.Policy...)
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Backends))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Replication))
	b = binary.LittleEndian.AppendUint64(b, p.Seed)
	b = binary.LittleEndian.AppendUint64(b, p.Epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Nodes)))
	for _, n := range p.Nodes {
		b = binary.LittleEndian.AppendUint32(b, uint32(n))
	}
	return b
}

// EncodeManifest serializes m with a CRC32 trailer. Epoch-0 quiescent
// manifests use the v1 layout (magic, length-prefixed policy name,
// backends, replication, seed); everything else uses v2, which appends
// epoch and member list to each placement body and carries an optional
// pending placement.
func EncodeManifest(m Manifest) []byte {
	if v1Expressible(m) {
		p := m.Committed
		b := make([]byte, 0, len(placementMagic)+2+len(p.Policy)+4+4+8+4)
		b = append(b, placementMagic...)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Policy)))
		b = append(b, p.Policy...)
		b = binary.LittleEndian.AppendUint32(b, uint32(p.Backends))
		b = binary.LittleEndian.AppendUint32(b, uint32(p.Replication))
		b = binary.LittleEndian.AppendUint64(b, p.Seed)
		return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	}
	b := append([]byte(nil), manifestMagic...)
	b = appendPlacementBody(b, m.Committed)
	if m.Pending != nil {
		b = append(b, 1)
		b = appendPlacementBody(b, *m.Pending)
	} else {
		b = append(b, 0)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// EncodePlacement serializes a quiescent manifest holding only p.
func EncodePlacement(p Placement) []byte {
	return EncodeManifest(Manifest{Committed: p})
}

const maxPolicyName = 64

func validatePlacement(p Placement) error {
	if len(p.Policy) > maxPolicyName {
		return fmt.Errorf("ingest: placement policy name of %d bytes exceeds %d", len(p.Policy), maxPolicyName)
	}
	if p.Backends < 1 || p.Backends > 1<<20 {
		return fmt.Errorf("ingest: placement declares %d backends", p.Backends)
	}
	if p.Nodes != nil {
		prev := cluster.NodeID(-1)
		for _, n := range p.Nodes {
			if n <= prev {
				return fmt.Errorf("ingest: placement member list is not strictly ascending at node %d", n)
			}
			if int(n) >= p.Backends {
				return fmt.Errorf("ingest: placement member %d outside [0, %d)", n, p.Backends)
			}
			prev = n
		}
	}
	if p.Replication < 1 || p.Replication > p.MemberCount() {
		return fmt.Errorf("ingest: placement declares replication %d over %d members", p.Replication, p.MemberCount())
	}
	return nil
}

// decodePlacementBody consumes one v2 placement body from b, returning
// the remainder.
func decodePlacementBody(b []byte) (Placement, []byte, error) {
	var p Placement
	if len(b) < 2 {
		return p, nil, fmt.Errorf("ingest: placement body truncated before name length")
	}
	nameLen := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if nameLen > maxPolicyName || len(b) < nameLen+4+4+8+8+4 {
		return p, nil, fmt.Errorf("ingest: placement body inconsistent with name length %d", nameLen)
	}
	p.Policy = string(b[:nameLen])
	b = b[nameLen:]
	p.Backends = int(binary.LittleEndian.Uint32(b))
	p.Replication = int(binary.LittleEndian.Uint32(b[4:]))
	p.Seed = binary.LittleEndian.Uint64(b[8:])
	p.Epoch = binary.LittleEndian.Uint64(b[16:])
	nodeCount := int(binary.LittleEndian.Uint32(b[24:]))
	b = b[28:]
	if nodeCount > 0 {
		if nodeCount > 1<<20 || len(b) < 4*nodeCount {
			return p, nil, fmt.Errorf("ingest: placement body truncated inside %d-node member list", nodeCount)
		}
		p.Nodes = make([]cluster.NodeID, nodeCount)
		for i := range p.Nodes {
			p.Nodes[i] = cluster.NodeID(binary.LittleEndian.Uint32(b[4*i:]))
		}
		b = b[4*nodeCount:]
	}
	if err := validatePlacement(p); err != nil {
		return p, nil, err
	}
	return p, b, nil
}

// DecodeManifest parses and validates an encoded manifest in either
// layout. It must never panic on arbitrary input (fuzzed) and rejects
// anything a valid encoder cannot produce — including a v2 encoding of a
// manifest the v1 layout could carry, so every accepted value has one
// canonical byte string.
func DecodeManifest(b []byte) (Manifest, error) {
	var m Manifest
	if len(b) < len(placementMagic)+2 {
		return m, fmt.Errorf("ingest: placement of %d bytes is shorter than its header", len(b))
	}
	magic := string(b[:len(placementMagic)])
	if magic != placementMagic && magic != manifestMagic {
		return m, fmt.Errorf("ingest: bad placement magic %q", magic)
	}
	if len(b) < 4 {
		return m, fmt.Errorf("ingest: placement too short for its checksum")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return m, fmt.Errorf("ingest: placement checksum mismatch")
	}
	rest := body[len(placementMagic):]

	if magic == placementMagic {
		var p Placement
		if len(rest) < 2 {
			return m, fmt.Errorf("ingest: placement body truncated before name length")
		}
		nameLen := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if nameLen > maxPolicyName || len(rest) != nameLen+4+4+8 {
			return m, fmt.Errorf("ingest: placement body of %d bytes inconsistent with name length %d", len(rest), nameLen)
		}
		p.Policy = string(rest[:nameLen])
		rest = rest[nameLen:]
		p.Backends = int(binary.LittleEndian.Uint32(rest))
		p.Replication = int(binary.LittleEndian.Uint32(rest[4:]))
		p.Seed = binary.LittleEndian.Uint64(rest[8:])
		if err := validatePlacement(p); err != nil {
			return m, err
		}
		m.Committed = p
		return m, nil
	}

	committed, rest, err := decodePlacementBody(rest)
	if err != nil {
		return m, err
	}
	if len(rest) < 1 {
		return m, fmt.Errorf("ingest: manifest truncated before pending flag")
	}
	hasPending := rest[0]
	rest = rest[1:]
	switch hasPending {
	case 0:
		if len(rest) != 0 {
			return m, fmt.Errorf("ingest: %d trailing bytes after quiescent manifest", len(rest))
		}
	case 1:
		pending, tail, err := decodePlacementBody(rest)
		if err != nil {
			return m, fmt.Errorf("ingest: pending placement: %w", err)
		}
		if len(tail) != 0 {
			return m, fmt.Errorf("ingest: %d trailing bytes after pending placement", len(tail))
		}
		if pending.Epoch != committed.Epoch+1 {
			return m, fmt.Errorf("ingest: pending epoch %d is not committed epoch %d + 1", pending.Epoch, committed.Epoch)
		}
		if pending.Policy != committed.Policy || pending.Seed != committed.Seed {
			return m, fmt.Errorf("ingest: pending placement changes policy or seed")
		}
		m.Pending = &pending
	default:
		return m, fmt.Errorf("ingest: bad pending flag %d", hasPending)
	}
	m.Committed = committed
	if v1Expressible(m) {
		return m, fmt.Errorf("ingest: non-canonical v2 encoding of an epoch-0 quiescent placement")
	}
	return m, nil
}

// DecodePlacement parses an encoded manifest and returns its committed
// placement. It must never panic on arbitrary input.
func DecodePlacement(b []byte) (Placement, error) {
	m, err := DecodeManifest(b)
	return m.Committed, err
}

// WriteManifestFile persists m under dir via atomic replacement (temp
// file + fsync + rename + directory fsync), so a crashed writer leaves
// either the old manifest or the new one — never a torn mix. This is the
// one-step routing flip: a migration commit is exactly one manifest
// rename.
func WriteManifestFile(dir string, m Manifest) error {
	return fsutil.WriteFileAtomic(nil, filepath.Join(dir, PlacementFile), EncodeManifest(m), 0o644)
}

// WritePlacementFile persists a quiescent manifest holding only p.
func WritePlacementFile(dir string, p Placement) error {
	return WriteManifestFile(dir, Manifest{Committed: p})
}

// ReadManifestFile loads dir's placement manifest. ok is false when no
// manifest exists (a pre-replication directory); a present-but-corrupt
// manifest is an error, not a silent fallback, because guessing the
// wrong placement silently misroutes every query.
func ReadManifestFile(dir string) (m Manifest, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, PlacementFile))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	m, err = DecodeManifest(b)
	if err != nil {
		return Manifest{}, false, err
	}
	return m, true, nil
}

// ReadPlacementFile loads dir's committed placement; see ReadManifestFile
// for the ok/error contract.
func ReadPlacementFile(dir string) (p Placement, ok bool, err error) {
	m, ok, err := ReadManifestFile(dir)
	return m.Committed, ok, err
}
