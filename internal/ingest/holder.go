package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"mssg/internal/cluster"
	"mssg/internal/obs"
)

// PlacementHolder is the single atomically swapped routing authority for
// an elastic cluster. Every router — the ingest vertexRouter, the query
// roster, the failover retry loop — resolves its policy through the
// holder at the start of each operation, so one Commit flips all routing
// in one step while in-flight operations keep the consistent snapshot
// they started with.
//
// The holder mirrors the durable manifest: BeginMigration persists the
// target as Pending before any block moves (durable intent, so a crashed
// coordinator can resume or abort), Commit rewrites the manifest with the
// target as Committed and only then swaps the in-memory snapshot. A
// holder with an empty dir is memory-only (tests, ephemeral clusters).
type PlacementHolder struct {
	dir string

	// mu serializes manifest writers (Begin/Commit/Abort/Reload); readers
	// go through the atomic pointer and never block.
	mu      sync.Mutex
	cur     atomic.Pointer[holderState]
	history []uint64
	// hooks run after every committed-epoch swap (CommitMigration,
	// Reload) — the serving tier's cache-invalidation trigger.
	hooks []func(epoch uint64)
}

// holderState pairs a manifest with the policy constructed from its
// committed placement, so readers get both from one atomic load.
type holderState struct {
	manifest Manifest
	policy   Policy
}

// NewPlacementHolder wraps manifest m, persisting under dir when dir is
// non-empty ("" = memory-only).
func NewPlacementHolder(dir string, m Manifest) (*PlacementHolder, error) {
	if err := validatePlacement(m.Committed); err != nil {
		return nil, err
	}
	pol, err := m.Committed.NewPolicy()
	if err != nil {
		return nil, err
	}
	h := &PlacementHolder{dir: dir, history: []uint64{m.Committed.Epoch}}
	h.cur.Store(&holderState{manifest: m, policy: pol})
	obs.Default().Gauge("placement.epoch").Set(int64(m.Committed.Epoch))
	return h, nil
}

// AddSwapHook registers fn to run after every committed-placement swap —
// CommitMigration and an epoch-advancing Reload — with the new epoch.
// Hooks run while the holder's writer lock is held: they must be fast
// and must not call the holder's mutating methods (the read side —
// Epoch, Placement, Policy, Snapshot — is lock-free and safe). The
// serving tier uses this to purge result caches keyed by the old epoch.
func (h *PlacementHolder) AddSwapHook(fn func(epoch uint64)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hooks = append(h.hooks, fn)
}

// fireSwapLocked publishes the new committed epoch to the obs gauge and
// the registered hooks. Caller holds h.mu.
func (h *PlacementHolder) fireSwapLocked(epoch uint64) {
	obs.Default().Gauge("placement.epoch").Set(int64(epoch))
	for _, fn := range h.hooks {
		fn(epoch)
	}
}

// OpenPlacementHolder loads dir's manifest into a holder. ok is false
// when the directory has no manifest.
func OpenPlacementHolder(dir string) (*PlacementHolder, bool, error) {
	m, ok, err := ReadManifestFile(dir)
	if err != nil || !ok {
		return nil, ok, err
	}
	h, err := NewPlacementHolder(dir, m)
	if err != nil {
		return nil, false, err
	}
	return h, true, nil
}

// Manifest returns the current manifest snapshot.
func (h *PlacementHolder) Manifest() Manifest {
	return h.cur.Load().manifest
}

// Placement returns the committed placement every router obeys.
func (h *PlacementHolder) Placement() Placement {
	return h.cur.Load().manifest.Committed
}

// Epoch returns the committed placement's epoch.
func (h *PlacementHolder) Epoch() uint64 {
	return h.cur.Load().manifest.Committed.Epoch
}

// Policy returns the routing policy for the committed placement. The
// returned value is immutable; wire `holder.Policy` as the engine's
// policy source so each query resolves a consistent snapshot.
func (h *PlacementHolder) Policy() Policy {
	return h.cur.Load().policy
}

// Snapshot returns the committed placement and its policy from one
// atomic load, so a router reading both (replica directory plus member
// roster) cannot see them straddle an epoch commit.
func (h *PlacementHolder) Snapshot() (Placement, Policy) {
	st := h.cur.Load()
	return st.manifest.Committed, st.policy
}

// History returns the committed epochs this holder has observed,
// oldest first. Chaos tests assert it is strictly monotonic.
func (h *PlacementHolder) History() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.history...)
}

func (h *PlacementHolder) persist(m Manifest) error {
	if h.dir == "" {
		return nil
	}
	return WriteManifestFile(h.dir, m)
}

func placementEqual(a, b Placement) bool {
	if a.Policy != b.Policy || a.Backends != b.Backends || a.Replication != b.Replication ||
		a.Seed != b.Seed || a.Epoch != b.Epoch || (a.Nodes == nil) != (b.Nodes == nil) || len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return true
}

// BeginMigration durably records target as the pending placement. A
// pending placement already on record must equal target (that is a
// resume); anything else is an error — abort the old migration first.
func (h *PlacementHolder) BeginMigration(target Placement) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.cur.Load()
	cm := st.manifest.Committed
	if err := validatePlacement(target); err != nil {
		return err
	}
	if target.Epoch != cm.Epoch+1 {
		return fmt.Errorf("ingest: migration target epoch %d is not committed epoch %d + 1", target.Epoch, cm.Epoch)
	}
	if target.Policy != cm.Policy || target.Seed != cm.Seed {
		return fmt.Errorf("ingest: migration cannot change policy or seed")
	}
	if p := st.manifest.Pending; p != nil {
		if !placementEqual(*p, target) {
			return fmt.Errorf("ingest: a different migration (to epoch %d) is already pending; abort it first", p.Epoch)
		}
		return nil
	}
	next := Manifest{Committed: cm, Pending: &target}
	if err := h.persist(next); err != nil {
		return err
	}
	h.cur.Store(&holderState{manifest: next, policy: st.policy})
	return nil
}

// CommitMigration promotes the pending placement to committed: the
// manifest is atomically rewritten first, then the in-memory snapshot is
// swapped, so routing flips in one step and a crash between the two
// leaves the durable state ahead of (never behind) the memory state.
func (h *PlacementHolder) CommitMigration() (Placement, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.cur.Load()
	p := st.manifest.Pending
	if p == nil {
		return Placement{}, fmt.Errorf("ingest: no pending migration to commit")
	}
	pol, err := p.NewPolicy()
	if err != nil {
		return Placement{}, err
	}
	next := Manifest{Committed: *p}
	if err := h.persist(next); err != nil {
		return Placement{}, err
	}
	h.cur.Store(&holderState{manifest: next, policy: pol})
	h.history = append(h.history, next.Committed.Epoch)
	h.fireSwapLocked(next.Committed.Epoch)
	return next.Committed, nil
}

// QuarantineFile records aborted migrations under the database
// directory: one line per aborted target epoch. Any partial destination
// copy an aborted migration left behind is keyed by that epoch — its
// window ids can never shadow a later migration's, and routing (which
// obeys only the committed placement) never reads the moved vertices on
// those destinations — so the file is the scrub-side inventory of dead
// data, not a correctness requirement.
const QuarantineFile = "migration-quarantine.log"

// AbortMigration drops the pending placement, leaving the committed
// epoch authoritative, and quarantines the abandoned target epoch in
// QuarantineFile. Safe to call with nothing pending.
func (h *PlacementHolder) AbortMigration() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.cur.Load()
	if st.manifest.Pending == nil {
		return nil
	}
	aborted := st.manifest.Pending.Epoch
	next := Manifest{Committed: st.manifest.Committed}
	if err := h.persist(next); err != nil {
		return err
	}
	h.cur.Store(&holderState{manifest: next, policy: st.policy})
	if h.dir != "" {
		f, err := os.OpenFile(filepath.Join(h.dir, QuarantineFile), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		_, werr := fmt.Fprintf(f, "epoch %d aborted (committed epoch %d kept)\n", aborted, next.Committed.Epoch)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		return werr
	}
	return nil
}

// Reload re-reads the manifest from disk and swaps it in when its
// committed epoch is newer — how a long-lived query server notices a
// migration committed by another process. Returns whether the snapshot
// changed. Memory-only holders never change.
func (h *PlacementHolder) Reload() (bool, error) {
	if h.dir == "" {
		return false, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok, err := ReadManifestFile(h.dir)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("ingest: placement manifest disappeared from %s", h.dir)
	}
	st := h.cur.Load()
	if m.Committed.Epoch < st.manifest.Committed.Epoch {
		return false, fmt.Errorf("ingest: on-disk placement epoch %d regressed below loaded epoch %d",
			m.Committed.Epoch, st.manifest.Committed.Epoch)
	}
	if m.Committed.Epoch == st.manifest.Committed.Epoch {
		return false, nil
	}
	pol, err := m.Committed.NewPolicy()
	if err != nil {
		return false, err
	}
	h.cur.Store(&holderState{manifest: m, policy: pol})
	h.history = append(h.history, m.Committed.Epoch)
	h.fireSwapLocked(m.Committed.Epoch)
	return true, nil
}

// JoinTarget returns the placement a join of node n would commit: the
// committed placement plus n as a member, at the next epoch. The node-ID
// space grows to include n when necessary.
func (h *PlacementHolder) JoinTarget(n cluster.NodeID) (Placement, error) {
	cm := h.Placement()
	if n < 0 {
		return Placement{}, fmt.Errorf("ingest: cannot join negative node %d", n)
	}
	if cm.HasMember(n) {
		return Placement{}, fmt.Errorf("ingest: node %d is already a member", n)
	}
	t := cm
	t.Epoch = cm.Epoch + 1
	members := cm.Members()
	i := 0
	for i < len(members) && members[i] < n {
		i++
	}
	members = append(members[:i:i], append([]cluster.NodeID{n}, members[i:]...)...)
	t.Nodes = members
	if int(n) >= t.Backends {
		t.Backends = int(n) + 1
	}
	return t, nil
}

// DrainTarget returns the placement a planned drain of node n would
// commit: the committed placement minus n, at the next epoch.
func (h *PlacementHolder) DrainTarget(n cluster.NodeID) (Placement, error) {
	cm := h.Placement()
	if !cm.HasMember(n) {
		return Placement{}, fmt.Errorf("ingest: node %d is not a member", n)
	}
	if cm.MemberCount() == 1 {
		return Placement{}, fmt.Errorf("ingest: cannot drain the last member")
	}
	t := cm
	t.Epoch = cm.Epoch + 1
	var members []cluster.NodeID
	for _, m := range cm.Members() {
		if m != n {
			members = append(members, m)
		}
	}
	t.Nodes = members
	if t.Replication > len(members) {
		t.Replication = len(members)
	}
	return t, nil
}
