// Live shard migration, graph side: what moves when the topology
// changes, how the bytes are framed, and how the destination proves it
// holds what the source holds. The transport (passes, EOS accounting,
// phase gates, abort broadcast) lives in internal/cluster/migrate.go;
// this file supplies the MigratePeer and the Migrate driver that wraps
// the whole thing in the epoch protocol:
//
//	BeginMigration (pending placement durable) → copy → catch-up →
//	verify → CommitMigration (routing flips) — or, on any failure,
//	the old epoch stays authoritative and the pending record makes
//	the migration resumable.
//
// Movement is minimal by construction: vertex v moves only to
// newReplicas(v) ∖ oldReplicas(v), and HRW scoring guarantees that set
// is empty unless the topology delta touched v's replica ranking. The
// old primary of each vertex is the unique shipper, so exactly one
// source streams each moving shard. Data rides the same window codec as
// ingest — {frontend, seq} headers with the migration's epoch folded
// into the id — so destination dedup (and, on durable back-ends, the
// checkpoint committed atomically with the data) gives exactly-once
// application across retries, crashes, and resumes.
package ingest

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mssg/internal/cluster"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

// MigrationConfig tunes a live migration.
type MigrationConfig struct {
	// WindowEdges caps edges per shipped window. 0 means 4096.
	WindowEdges int
	// Durable makes destinations persist the dedup-set through
	// graphdb.Checkpointer and Flush at every pass end, so a killed
	// migration resumes without re-applying windows. Requires durable
	// back-ends.
	Durable bool
	// Hook, when non-nil, is forwarded to the transport: it runs on the
	// coordinator at every phase boundary (copy, catchup, verify, commit)
	// and may abort the migration by returning an error. Chaos tests kill
	// nodes from it.
	Hook func(pass cluster.MigratePass) error
}

func (c MigrationConfig) windowEdges() int {
	if c.WindowEdges <= 0 {
		return 4096
	}
	return c.WindowEdges
}

// MigrationStats aggregates one migration attempt across all peers.
type MigrationStats struct {
	// MovedVertices counts vertices shipped to at least one new replica
	// (per destination: a vertex moving to two nodes counts twice).
	MovedVertices int64
	// MovedEdges counts adjacency entries shipped in the copy pass.
	MovedEdges int64
	// CatchupEdges counts entries shipped by the catch-up pass — the
	// suffix ingested while the bulk copy ran.
	CatchupEdges int64
	// Windows and DupWindows count shipped windows and windows the
	// destination had already applied (a resume re-ship).
	Windows    int64
	DupWindows int64
}

// migrationStatsAtomic is the peers' shared live counter set; Snapshot
// renders it as a MigrationStats.
type migrationStatsAtomic struct {
	movedVertices, movedEdges, catchupEdges, windows, dupWindows atomic.Int64
}

func (s *migrationStatsAtomic) Snapshot() MigrationStats {
	return MigrationStats{
		MovedVertices: s.movedVertices.Load(),
		MovedEdges:    s.movedEdges.Load(),
		CatchupEdges:  s.catchupEdges.Load(),
		Windows:       s.windows.Load(),
		DupWindows:    s.dupWindows.Load(),
	}
}

// migFrontendBase tags migration window ids so they can never collide
// with real front-end ids (front-end counts are tiny; windowKey keeps 16
// frontend bits). The source node's ID is or-ed in.
const migFrontendBase = 0x8000

// migWindowID builds the {frontend, seq} pair for the source's n-th
// migration window toward the target epoch. Folding the epoch into seq
// keeps ids unique across successive migrations, so an abandoned
// migration's applied windows never shadow a later one's.
func migWindowID(source cluster.NodeID, epoch uint64, n uint32) (frontend uint32, seq uint64) {
	return migFrontendBase | uint32(source), (epoch&0xFFFF)<<32 | uint64(n)
}

// Verify-pass payload kinds.
const (
	verifyVertices = byte(iota)
	verifySummary
)

// shardChecksum folds one distinct adjacency pair into an order- and
// duplicate-independent set checksum. XOR over hashes commutes, so
// source and destination can each walk their own storage order; and
// because both sides reduce over *distinct* neighbours, harmless
// double-applied windows from a non-durable resume do not fail verify.
func shardChecksum(v, u graph.VertexID) uint64 {
	return hrwMix(uint64(v)*0x9e3779b97f4a7c15 ^ hrwMix(uint64(u)))
}

// vertexSummary is one moved vertex's distinct-neighbour reduction.
type vertexSummary struct {
	sum   uint64
	edges int64
}

// summarize reduces v's local adjacency to its set checksum.
func summarize(db graphdb.Graph, v graph.VertexID, scratch *graph.AdjList, seen map[graph.VertexID]bool) (vertexSummary, error) {
	scratch.Reset()
	if err := graphdb.Adjacency(db, v, scratch); err != nil {
		return vertexSummary{}, err
	}
	clear(seen)
	var s vertexSummary
	for _, u := range scratch.IDs() {
		if seen[u] {
			continue
		}
		seen[u] = true
		s.sum ^= shardChecksum(v, u)
		s.edges++
	}
	return s, nil
}

// migrationPeer implements cluster.MigratePeer for one back-end node.
// The transport calls Ship and Receive concurrently; mu serializes the
// destination-side state (dedup-set, verify accumulators) and, together
// with the back-end's own reader/writer discipline, the database writes.
type migrationPeer struct {
	self  cluster.NodeID
	db    graphdb.Graph
	oldRP ReplicaPolicy
	newRP ReplicaPolicy
	epoch uint64 // target epoch
	cfg   MigrationConfig
	stats *migrationStatsAtomic

	// Source side, written only by the Ship goroutine: per destination,
	// the moved vertices and how many adjacency entries were shipped for
	// each (the append-only offset the catch-up pass resumes from).
	shipped map[cluster.NodeID]map[graph.VertexID]int
	windowN uint32

	// dbMu serializes this peer's database access between the shipper
	// (reads) and receiver (writes), which the transport runs
	// concurrently. Back-ends without internal locking (grdb) require
	// mutators externally serialized against readers; taking dbMu
	// per-vertex and per-window keeps both passes streaming. Lock order
	// is always mu then dbMu.
	dbMu sync.Mutex

	mu sync.Mutex
	// Destination side.
	seen      map[uint64]struct{}
	ckpt      graphdb.Checkpointer
	recvMoved map[graph.VertexID]bool // vertices this node received windows for
	expect    map[cluster.NodeID]*verifyExpect
	verdict   string // non-empty = failed
}

// verifyExpect accumulates one source's verify stream on the
// destination: the vertex list chunks, then the summary to compare.
type verifyExpect struct {
	vertices []graph.VertexID
	sum      uint64
	vcount   int64
	edges    int64
	sealed   bool
}

func newMigrationPeer(self cluster.NodeID, db graphdb.Graph, oldRP, newRP ReplicaPolicy, epoch uint64, cfg MigrationConfig, stats *migrationStatsAtomic) (*migrationPeer, error) {
	p := &migrationPeer{
		self: self, db: db, oldRP: oldRP, newRP: newRP, epoch: epoch, cfg: cfg, stats: stats,
		shipped:   make(map[cluster.NodeID]map[graph.VertexID]int),
		seen:      make(map[uint64]struct{}),
		recvMoved: make(map[graph.VertexID]bool),
		expect:    make(map[cluster.NodeID]*verifyExpect),
	}
	if cfg.Durable {
		ck, ok := db.(graphdb.Checkpointer)
		if !ok {
			return nil, fmt.Errorf("ingest: durable migration needs a database implementing graphdb.Checkpointer, got %T", db)
		}
		p.ckpt = ck
		blob, err := ck.GetCheckpoint()
		if err != nil {
			return nil, err
		}
		if p.seen, err = decodeSeen(blob); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// movesFor returns the destinations vertex v must be copied to: its new
// replicas that are not already old replicas. Empty for the vast
// majority of vertices — HRW re-ranking touches only shards the
// topology delta actually moves.
func (p *migrationPeer) movesFor(v graph.VertexID) []cluster.NodeID {
	old := p.oldRP.Replicas(v)
	if len(old) == 0 || old[0] != p.self {
		// Only the old primary ships, so each moving shard has exactly
		// one source (the failover directory guarantees the primary holds
		// the full adjacency).
		return nil
	}
	var dests []cluster.NodeID
next:
	for _, n := range p.newRP.Replicas(v) {
		for _, o := range old {
			if o == n {
				continue next
			}
		}
		dests = append(dests, n)
	}
	return dests
}

// Ship implements cluster.MigratePeer.
func (p *migrationPeer) Ship(pass cluster.MigratePass, emit func(cluster.NodeID, []byte) error) error {
	switch pass {
	case cluster.PassCopy:
		return p.shipCopy(emit)
	case cluster.PassCatchup:
		return p.shipCatchup(emit)
	case cluster.PassVerify:
		return p.shipVerify(emit)
	}
	return fmt.Errorf("ingest: unknown migration pass %v", pass)
}

// windowBatcher accumulates per-destination edge windows and emits them
// with fresh migration window ids.
type windowBatcher struct {
	p       *migrationPeer
	emit    func(cluster.NodeID, []byte) error
	pending map[cluster.NodeID][]graph.Edge
}

func (w *windowBatcher) add(dest cluster.NodeID, e graph.Edge) error {
	w.pending[dest] = append(w.pending[dest], e)
	if len(w.pending[dest]) >= w.p.cfg.windowEdges() {
		return w.flush(dest)
	}
	return nil
}

func (w *windowBatcher) flush(dest cluster.NodeID) error {
	edges := w.pending[dest]
	if len(edges) == 0 {
		return nil
	}
	w.p.windowN++
	frontend, seq := migWindowID(w.p.self, w.p.epoch, w.p.windowN)
	w.p.stats.windows.Add(1)
	delete(w.pending, dest)
	return w.emit(dest, encodeWindow(frontend, seq, edges))
}

func (w *windowBatcher) flushAll() error {
	dests := make([]cluster.NodeID, 0, len(w.pending))
	for d := range w.pending {
		dests = append(dests, d)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	for _, d := range dests {
		if err := w.flush(d); err != nil {
			return err
		}
	}
	return nil
}

func (p *migrationPeer) shipCopy(emit func(cluster.NodeID, []byte) error) error {
	w := &windowBatcher{p: p, emit: emit, pending: make(map[cluster.NodeID][]graph.Edge)}
	adj := graph.NewAdjList(256)
	// Collect the moving vertices first, then read each adjacency under
	// its own short lock hold, so emission (which can block on the
	// fabric) never runs with the database locked.
	p.dbMu.Lock()
	var moving []graph.VertexID
	err := graphdb.ForEachVertex(p.db, func(v graph.VertexID) error {
		if len(p.movesFor(v)) > 0 {
			moving = append(moving, v)
		}
		return nil
	})
	p.dbMu.Unlock()
	if err != nil {
		return err
	}
	for _, v := range moving {
		dests := p.movesFor(v)
		p.dbMu.Lock()
		adj.Reset()
		err := graphdb.Adjacency(p.db, v, adj)
		p.dbMu.Unlock()
		if err != nil {
			return err
		}
		for _, dest := range dests {
			for _, u := range adj.IDs() {
				if err := w.add(dest, graph.Edge{Src: v, Dst: u}); err != nil {
					return err
				}
			}
			if p.shipped[dest] == nil {
				p.shipped[dest] = make(map[graph.VertexID]int)
			}
			p.shipped[dest][v] = adj.Len()
			p.stats.movedVertices.Add(1)
			p.stats.movedEdges.Add(int64(adj.Len()))
		}
	}
	return w.flushAll()
}

// shipCatchup re-reads every moved vertex and ships the adjacency
// suffix past the copy-pass offset — the edges ingested while the bulk
// copy ran. Adjacency lists are append-only, so the offset is a correct
// resume point.
func (p *migrationPeer) shipCatchup(emit func(cluster.NodeID, []byte) error) error {
	w := &windowBatcher{p: p, emit: emit, pending: make(map[cluster.NodeID][]graph.Edge)}
	adj := graph.NewAdjList(256)
	for _, dest := range p.shippedDests() {
		moved := p.shipped[dest]
		for _, v := range sortedVertices(moved) {
			p.dbMu.Lock()
			adj.Reset()
			err := graphdb.Adjacency(p.db, v, adj)
			p.dbMu.Unlock()
			if err != nil {
				return err
			}
			for _, u := range adj.IDs()[min(moved[v], adj.Len()):] {
				if err := w.add(dest, graph.Edge{Src: v, Dst: u}); err != nil {
					return err
				}
				p.stats.catchupEdges.Add(1)
			}
			if adj.Len() > moved[v] {
				moved[v] = adj.Len()
			}
		}
	}
	return w.flushAll()
}

// shipVerify streams, per destination, the moved vertex list in chunks
// followed by a summary holding the source-side distinct-neighbour set
// checksum computed from the *current* local adjacency — so any window
// the copy and catch-up passes failed to deliver shows up as a
// destination mismatch.
func (p *migrationPeer) shipVerify(emit func(cluster.NodeID, []byte) error) error {
	adj := graph.NewAdjList(256)
	dedup := make(map[graph.VertexID]bool)
	const chunkVertices = 512
	for _, dest := range p.shippedDests() {
		moved := p.shipped[dest]
		vs := sortedVertices(moved)
		var sum uint64
		var edges int64
		for start := 0; start < len(vs); start += chunkVertices {
			chunk := vs[start:min(start+chunkVertices, len(vs))]
			payload := make([]byte, 0, 5+8*len(chunk))
			payload = append(payload, verifyVertices)
			payload = binary.LittleEndian.AppendUint32(payload, uint32(len(chunk)))
			for _, v := range chunk {
				payload = binary.LittleEndian.AppendUint64(payload, uint64(v))
				p.dbMu.Lock()
				s, err := summarize(p.db, v, adj, dedup)
				p.dbMu.Unlock()
				if err != nil {
					return err
				}
				sum ^= s.sum
				edges += s.edges
			}
			if err := emit(dest, payload); err != nil {
				return err
			}
		}
		payload := make([]byte, 0, 1+8+8+8)
		payload = append(payload, verifySummary)
		payload = binary.LittleEndian.AppendUint64(payload, sum)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(len(vs)))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(edges))
		if err := emit(dest, payload); err != nil {
			return err
		}
	}
	return nil
}

func (p *migrationPeer) shippedDests() []cluster.NodeID {
	dests := make([]cluster.NodeID, 0, len(p.shipped))
	for d := range p.shipped {
		dests = append(dests, d)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	return dests
}

func sortedVertices(m map[graph.VertexID]int) []graph.VertexID {
	vs := make([]graph.VertexID, 0, len(m))
	for v := range m {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Receive implements cluster.MigratePeer.
func (p *migrationPeer) Receive(pass cluster.MigratePass, from cluster.NodeID, payload []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pass == cluster.PassVerify {
		return p.receiveVerify(from, payload)
	}
	frontend, seq, edges, err := decodeWindow(payload)
	if err != nil {
		return err
	}
	key := windowKey(frontend, seq)
	if _, dup := p.seen[key]; dup {
		p.stats.dupWindows.Add(1)
		return nil
	}
	p.dbMu.Lock()
	err = p.db.StoreEdges(edges)
	p.dbMu.Unlock()
	if err != nil {
		return err
	}
	p.seen[key] = struct{}{}
	for _, e := range edges {
		p.recvMoved[e.Src] = true
	}
	return nil
}

func (p *migrationPeer) receiveVerify(from cluster.NodeID, payload []byte) error {
	if len(payload) < 1 {
		return fmt.Errorf("ingest: empty verify payload")
	}
	ex := p.expect[from]
	if ex == nil {
		ex = &verifyExpect{}
		p.expect[from] = ex
	}
	switch payload[0] {
	case verifyVertices:
		if len(payload) < 5 {
			return fmt.Errorf("ingest: truncated verify chunk")
		}
		n := int(binary.LittleEndian.Uint32(payload[1:]))
		if len(payload) != 5+8*n {
			return fmt.Errorf("ingest: verify chunk of %d bytes claims %d vertices", len(payload), n)
		}
		for i := 0; i < n; i++ {
			ex.vertices = append(ex.vertices, graph.VertexID(binary.LittleEndian.Uint64(payload[5+8*i:])))
		}
	case verifySummary:
		if len(payload) != 1+24 {
			return fmt.Errorf("ingest: verify summary of %d bytes", len(payload))
		}
		ex.sum = binary.LittleEndian.Uint64(payload[1:])
		ex.vcount = int64(binary.LittleEndian.Uint64(payload[9:]))
		ex.edges = int64(binary.LittleEndian.Uint64(payload[17:]))
		ex.sealed = true
	default:
		return fmt.Errorf("ingest: unknown verify payload kind %d", payload[0])
	}
	return nil
}

// PassDone implements cluster.MigratePeer: after the verify pass the
// destination recomputes each source's checksum over its own storage;
// after every pass a durable destination commits the dedup-set
// atomically with the received windows (the migration checkpoint a
// resumed run starts from).
func (p *migrationPeer) PassDone(pass cluster.MigratePass) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pass == cluster.PassVerify {
		if err := p.checkVerify(); err != nil {
			return err
		}
	}
	if p.ckpt != nil {
		p.dbMu.Lock()
		defer p.dbMu.Unlock()
		if err := p.ckpt.SetCheckpoint(encodeSeen(p.seen)); err != nil {
			return err
		}
		return p.db.Flush()
	}
	return nil
}

func (p *migrationPeer) checkVerify() error {
	adj := graph.NewAdjList(256)
	dedup := make(map[graph.VertexID]bool)
	for _, from := range func() []cluster.NodeID {
		ns := make([]cluster.NodeID, 0, len(p.expect))
		for n := range p.expect {
			ns = append(ns, n)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		return ns
	}() {
		ex := p.expect[from]
		if !ex.sealed {
			p.verdict = fmt.Sprintf("node %d: verify stream from %d has no summary", p.self, from)
			return nil
		}
		if int64(len(ex.vertices)) != ex.vcount {
			p.verdict = fmt.Sprintf("node %d: source %d listed %d vertices, summary claims %d",
				p.self, from, len(ex.vertices), ex.vcount)
			return nil
		}
		var sum uint64
		var edges int64
		for _, v := range ex.vertices {
			p.dbMu.Lock()
			s, err := summarize(p.db, v, adj, dedup)
			p.dbMu.Unlock()
			if err != nil {
				return err
			}
			sum ^= s.sum
			edges += s.edges
		}
		if sum != ex.sum || edges != ex.edges {
			p.verdict = fmt.Sprintf("node %d: shard checksum mismatch vs source %d (%d vertices): sum %016x/%016x edges %d/%d",
				p.self, from, len(ex.vertices), sum, ex.sum, edges, ex.edges)
			return nil
		}
	}
	return nil
}

// Verdict implements cluster.MigratePeer.
func (p *migrationPeer) Verdict() (bool, string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.verdict == "", p.verdict
}

// replicaPolicyFor materializes a placement's replica directory.
func replicaPolicyFor(p Placement) (ReplicaPolicy, error) {
	if p.Policy != "rendezvous" {
		return nil, fmt.Errorf("ingest: live migration requires the rendezvous policy, placement uses %q", p.Policy)
	}
	pol, err := p.NewPolicy()
	if err != nil {
		return nil, err
	}
	rp, ok := pol.(ReplicaPolicy)
	if !ok {
		return nil, fmt.Errorf("ingest: policy %T has no replica directory", pol)
	}
	return rp, nil
}

// unionMembers returns the ascending union of two placements' members —
// the migration's participant set. Old members must agree on the epoch
// flip even when no shard of theirs moves, and new members receive.
func unionMembers(a, b Placement) []cluster.NodeID {
	set := make(map[cluster.NodeID]bool)
	for _, n := range a.Members() {
		set[n] = true
	}
	for _, n := range b.Members() {
		set[n] = true
	}
	out := make([]cluster.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Migrate runs a live migration over fabric f so that target becomes the
// committed placement: durable intent (pending manifest), bulk copy,
// catch-up, destination-side verify, epoch commit. Queries keep running
// throughout — they route by the committed placement, which flips only
// at the final commit. On any error the committed epoch is untouched and
// the pending record remains, so the same call with the same target
// resumes the migration (durable destinations skip already-applied
// windows via their checkpointed dedup-set); AbortMigration instead
// abandons it. dbs is indexed by fabric node.
func Migrate(f cluster.Fabric, dbs []graphdb.Graph, holder *PlacementHolder, target Placement, cfg MigrationConfig) (MigrationStats, error) {
	var zero MigrationStats
	old := holder.Placement()
	oldRP, err := replicaPolicyFor(old)
	if err != nil {
		return zero, err
	}
	newRP, err := replicaPolicyFor(target)
	if err != nil {
		return zero, err
	}
	parts := unionMembers(old, target)
	for _, n := range parts {
		if int(n) >= f.Nodes() || int(n) >= len(dbs) {
			return zero, fmt.Errorf("ingest: migration participant %d outside fabric of %d nodes (%d databases)",
				n, f.Nodes(), len(dbs))
		}
	}
	if err := holder.BeginMigration(target); err != nil {
		return zero, err
	}

	stats := &migrationStatsAtomic{}
	peers := make(map[cluster.NodeID]*migrationPeer, len(parts))
	for _, n := range parts {
		p, err := newMigrationPeer(n, dbs[n], oldRP, newRP, target.Epoch, cfg, stats)
		if err != nil {
			return zero, err
		}
		peers[n] = p
	}
	err = cluster.RunMigration(f, func(n cluster.NodeID) cluster.MigratePeer { return peers[n] }, cluster.MigrateOptions{
		Participants: parts,
		Hook:         cfg.Hook,
	})
	if err != nil {
		return stats.Snapshot(), err
	}
	if _, err := holder.CommitMigration(); err != nil {
		return stats.Snapshot(), err
	}
	return stats.Snapshot(), nil
}

// ResumeMigration re-runs the migration recorded in the holder's pending
// placement. resumed is false when nothing was pending.
func ResumeMigration(f cluster.Fabric, dbs []graphdb.Graph, holder *PlacementHolder, cfg MigrationConfig) (stats MigrationStats, resumed bool, err error) {
	pending := holder.Manifest().Pending
	if pending == nil {
		return MigrationStats{}, false, nil
	}
	stats, err = Migrate(f, dbs, holder, *pending, cfg)
	return stats, true, err
}
