package ingest

import (
	"reflect"
	"testing"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/grdb"
)

func TestSeenCodecRoundTrip(t *testing.T) {
	seen := map[uint64]struct{}{
		windowKey(0, 1):     {},
		windowKey(3, 9):     {},
		windowKey(7, 1<<40): {},
	}
	got, err := decodeSeen(encodeSeen(seen))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, seen) {
		t.Fatalf("round trip = %v, want %v", got, seen)
	}
	empty, err := decodeSeen(nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("decodeSeen(nil) = %v, %v", empty, err)
	}
	for _, bad := range [][]byte{
		[]byte("xxxx"),
		[]byte("ICK1"),
		append([]byte("ICK1"), make([]byte, 13)...), // misaligned body
		encodeSeen(seen)[:20],                       // truncated
	} {
		if _, err := decodeSeen(bad); err == nil {
			t.Errorf("decodeSeen accepted %x", bad)
		}
	}
}

// TestDurableIngestResumesFromCheckpoint is the back-end half of
// crash-restart ingestion: a store filter that checkpoints its dedup-set,
// "crashes", and is rebuilt over the reopened database must skip every
// window the checkpoint covers and store only the rest.
func TestDurableIngestResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	open := func() graphdb.Graph {
		db, err := grdb.Open(graphdb.Options{
			Dir:        dir,
			Levels:     []graphdb.LevelSpec{{SubBlockCap: 2, BlockBytes: 256}, {SubBlockCap: 4, BlockBytes: 256}, {SubBlockCap: 8, BlockBytes: 256}},
			Durability: graphdb.DurabilityFull,
		})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return db
	}

	db := open()
	stats := &Stats{}
	sf := &storeFilter{cfg: Config{Durable: true, CheckpointWindows: 1}, db: db, stats: stats}
	if err := sf.Init(nil); err != nil {
		t.Fatal(err)
	}
	w1 := encodeWindow(0, 1, []graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}})
	w2 := encodeWindow(0, 2, []graph.Edge{{Src: 2, Dst: 4}})
	if err := sf.apply(w1); err != nil {
		t.Fatal(err)
	}
	if err := sf.apply(w2); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon filter and database without Finalize/Close. Every
	// window was checkpointed (CheckpointWindows: 1), so the restarted
	// back-end must remember both.

	db2 := open()
	defer db2.Close()
	stats2 := &Stats{}
	sf2 := &storeFilter{cfg: Config{Durable: true}, db: db2, stats: stats2}
	if err := sf2.Init(nil); err != nil {
		t.Fatal(err)
	}
	w3 := encodeWindow(0, 3, []graph.Edge{{Src: 3, Dst: 5}})
	// The front-end re-ships the whole stream plus one new window.
	for _, w := range [][]byte{w1, w2, w3} {
		if err := sf2.apply(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := sf2.Finalize(nil); err != nil {
		t.Fatal(err)
	}
	if got := stats2.DupBlocks.Load(); got != 2 {
		t.Errorf("DupBlocks = %d, want 2 (checkpointed windows not skipped)", got)
	}
	if got := stats2.EdgesStored.Load(); got != 1 {
		t.Errorf("EdgesStored = %d, want 1", got)
	}
	deg, err := graphdb.Degree(db2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if deg != 2 {
		t.Errorf("Degree(1) = %d, want 2 (re-shipped window double-stored)", deg)
	}
}

// TestDurableIngestNeedsCheckpointer: hashdb has no durable checkpoint
// support, so durable ingest over it must fail loudly at Init rather than
// silently losing resume semantics.
func TestDurableIngestNeedsCheckpointer(t *testing.T) {
	sf := &storeFilter{cfg: Config{Durable: true}, db: fakeNoCkpt{}, stats: &Stats{}}
	if err := sf.Init(nil); err == nil {
		t.Fatal("durable ingest accepted a database without Checkpointer")
	}
}

type fakeNoCkpt struct{ graphdb.Graph }
