// Package ingest implements MSSG's Ingestion Service (paper §3.2): the
// entry point for streaming graph data, which accumulates incoming edges
// into fixed-size blocks (windows) and clusters/declusters them to the
// GraphDB instances on the back-end nodes.
//
// The service is built from two DataCutter filters — the front-end ingest
// filter (reader + declusterer) and the back-end store filter — connected
// by a directed stream, mirroring Fig 3.1. Declustering policies are
// pluggable; the defaults are the paper's vertex- and edge-based
// round-robin.
package ingest

import (
	"fmt"

	"mssg/internal/graph"
)

// Policy decides which back-end node stores an edge (the paper's
// clustering/declustering customization point).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Route returns the destination back-end index in [0, backends) for
	// edge e. Policies may be stateful (round-robin); a Policy instance
	// is used by a single ingest filter copy at a time.
	Route(e graph.Edge, backends int) int
	// GloballyMapped reports whether vertex ownership is derivable by
	// every node from the vertex ID alone (enabling the BFS known-mapping
	// fringe routing, §4.2). Edge-granularity policies return false.
	GloballyMapped() bool
}

// VertexMod is vertex-granularity round-robin declustering: all edges of
// source vertex v go to node v % p. This is the globally known mapping the
// paper's search experiments leverage (chapter 5: "the vertex ownership
// knowledge was leveraged during the search phase").
type VertexMod struct{}

// Name implements Policy.
func (VertexMod) Name() string { return "vertex-mod" }

// Route implements Policy.
func (VertexMod) Route(e graph.Edge, backends int) int {
	return int(int64(e.Src) % int64(backends))
}

// GloballyMapped implements Policy.
func (VertexMod) GloballyMapped() bool { return true }

// EdgeRoundRobin is edge-granularity declustering: successive edges cycle
// across back-ends regardless of their endpoints, so a vertex's adjacency
// list may be split over every node and searches must broadcast their
// fringes.
type EdgeRoundRobin struct {
	next int
}

// Name implements Policy.
func (*EdgeRoundRobin) Name() string { return "edge-round-robin" }

// Route implements Policy.
func (p *EdgeRoundRobin) Route(e graph.Edge, backends int) int {
	n := p.next % backends
	p.next++
	return n
}

// GloballyMapped implements Policy.
func (*EdgeRoundRobin) GloballyMapped() bool { return false }

// SeedCopy implements CopySeeder: front-end copy i starts its cycle at
// back-end i, so concurrent front-ends interleave instead of all opening
// on back-end 0 and piling the partial-cycle surplus there.
func (p *EdgeRoundRobin) SeedCopy(copy int) { p.next = copy }

// CopySeeder is an optional Policy extension for stateful policies whose
// starting state should vary per front-end filter copy. The ingest
// filter calls SeedCopy once from Init, before any Route call, with its
// copy index. Without it, every copy of a cyclic policy like
// EdgeRoundRobin begins at destination 0 and the per-copy remainder
// edges all land on the low-index back-ends.
type CopySeeder interface {
	SeedCopy(copy int)
}

// PolicyByName resolves the built-in policies. The rendezvous policy is
// returned unconfigured (no declared node set); callers that want its
// global mapping and replica directory construct it with NewRendezvous
// or Placement.NewPolicy instead.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "vertex-mod", "vertex", "":
		return VertexMod{}, nil
	case "edge-round-robin", "edge":
		return &EdgeRoundRobin{}, nil
	case "rendezvous", "hrw":
		return &Rendezvous{}, nil
	}
	return nil, fmt.Errorf("ingest: unknown declustering policy %q", name)
}
