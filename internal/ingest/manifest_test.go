package ingest

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mssg/internal/cluster"
	"mssg/internal/graph"
)

// encodeV1 reproduces the PR 7 codec byte-for-byte, independent of the
// current encoder, so compatibility is tested against the old wire
// format rather than against ourselves.
func encodeV1(policy string, backends, replication int, seed uint64) []byte {
	b := append([]byte(nil), placementMagic...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(policy)))
	b = append(b, policy...)
	b = binary.LittleEndian.AppendUint32(b, uint32(backends))
	b = binary.LittleEndian.AppendUint32(b, uint32(replication))
	b = binary.LittleEndian.AppendUint64(b, seed)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// TestManifestV1Compat: a pre-epoch (PR 7, MSSGPL01) manifest must keep
// decoding, report epoch 0 with a nil member subset and no pending
// placement, and re-encode to the identical bytes.
func TestManifestV1Compat(t *testing.T) {
	old := encodeV1("rendezvous", 8, 3, 0xfeed)
	m, err := DecodeManifest(old)
	if err != nil {
		t.Fatalf("DecodeManifest(v1): %v", err)
	}
	want := Placement{Policy: "rendezvous", Backends: 8, Replication: 3, Seed: 0xfeed}
	if !placementEqual(m.Committed, want) {
		t.Fatalf("v1 decoded to %+v, want %+v", m.Committed, want)
	}
	if m.Committed.Epoch != 0 || m.Committed.Nodes != nil || m.Pending != nil {
		t.Fatalf("v1 manifest must be epoch 0, full membership, quiescent: %+v", m)
	}
	if got := EncodeManifest(m); !bytes.Equal(got, old) {
		t.Fatalf("v1 manifest did not round-trip: %x vs %x", got, old)
	}
	// The epoch-0 quiescent encoding IS the v1 encoding, so pre-elasticity
	// binaries can still read fresh ingest output.
	if got := EncodePlacement(want); !bytes.Equal(got, old) {
		t.Fatalf("epoch-0 placement must encode as v1: %x vs %x", got, old)
	}
}

func TestManifestV2RoundTrip(t *testing.T) {
	cases := []Manifest{
		{Committed: Placement{Policy: "rendezvous", Backends: 8, Replication: 2, Seed: 1, Epoch: 4}},
		{Committed: Placement{Policy: "rendezvous", Backends: 9, Replication: 2, Seed: 1, Epoch: 1,
			Nodes: []cluster.NodeID{0, 2, 3, 8}}},
		{
			Committed: Placement{Policy: "rendezvous", Backends: 8, Replication: 2, Seed: 9, Epoch: 0,
				Nodes: []cluster.NodeID{0, 1, 2, 3, 4, 5, 6, 7}},
			Pending: &Placement{Policy: "rendezvous", Backends: 9, Replication: 2, Seed: 9, Epoch: 1,
				Nodes: []cluster.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8}},
		},
	}
	for i, m := range cases {
		enc := EncodeManifest(m)
		got, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !placementEqual(got.Committed, m.Committed) {
			t.Fatalf("case %d: committed %+v, want %+v", i, got.Committed, m.Committed)
		}
		if (got.Pending == nil) != (m.Pending == nil) {
			t.Fatalf("case %d: pending presence mismatch", i)
		}
		if m.Pending != nil && !placementEqual(*got.Pending, *m.Pending) {
			t.Fatalf("case %d: pending %+v, want %+v", i, *got.Pending, *m.Pending)
		}
	}
}

func TestManifestRejects(t *testing.T) {
	good := Placement{Policy: "rendezvous", Backends: 8, Replication: 2, Seed: 1, Epoch: 2}
	cases := map[string][]byte{
		"non-successor pending epoch": EncodeManifest(Manifest{
			Committed: good,
			Pending:   &Placement{Policy: "rendezvous", Backends: 8, Replication: 2, Seed: 1, Epoch: 5},
		}),
		"pending seed change": EncodeManifest(Manifest{
			Committed: good,
			Pending:   &Placement{Policy: "rendezvous", Backends: 8, Replication: 2, Seed: 2, Epoch: 3},
		}),
		"unsorted member list": EncodePlacement(Placement{
			Policy: "rendezvous", Backends: 8, Replication: 2, Seed: 1, Epoch: 1,
			Nodes: []cluster.NodeID{3, 1}}),
		"member outside backends": EncodePlacement(Placement{
			Policy: "rendezvous", Backends: 4, Replication: 2, Seed: 1, Epoch: 1,
			Nodes: []cluster.NodeID{0, 9}}),
		"replication over members": EncodePlacement(Placement{
			Policy: "rendezvous", Backends: 8, Replication: 3, Seed: 1, Epoch: 1,
			Nodes: []cluster.NodeID{0, 1}}),
	}
	// Note: EncodeManifest happily emits invalid values; the decoder is
	// the validation gate, mirroring how the fuzzer exercises it.
	for name, enc := range cases {
		if _, err := DecodeManifest(enc); err == nil {
			t.Errorf("%s: decoder accepted invalid manifest", name)
		}
	}
}

// TestRendezvousSubsetMovement: placements over explicit member subsets
// keep HRW's minimal-movement property — adding a member only pulls
// shards onto the new node, and every vertex's replica set stays within
// the member list.
func TestRendezvousSubsetMovement(t *testing.T) {
	oldP := Placement{Policy: "rendezvous", Backends: 9, Replication: 2, Seed: 42,
		Nodes: []cluster.NodeID{0, 1, 2, 3}}
	newP := oldP
	newP.Epoch = 1
	newP.Nodes = []cluster.NodeID{0, 1, 2, 3, 8}

	op, err := oldP.NewPolicy()
	if err != nil {
		t.Fatal(err)
	}
	np, err := newP.NewPolicy()
	if err != nil {
		t.Fatal(err)
	}
	oldRP, newRP := op.(ReplicaPolicy), np.(ReplicaPolicy)
	moved := 0
	const vertices = 20000
	for v := 0; v < vertices; v++ {
		ov := oldRP.Replicas(graph.VertexID(v))
		nv := newRP.Replicas(graph.VertexID(v))
		if len(ov) != 2 || len(nv) != 2 {
			t.Fatalf("v%d: replica sets %v -> %v, want 2-way", v, ov, nv)
		}
		for _, n := range nv {
			if !newP.HasMember(n) {
				t.Fatalf("v%d placed on non-member %d", v, n)
			}
			in := false
			for _, o := range ov {
				if o == n {
					in = true
				}
			}
			if !in {
				moved++
				if n != 8 {
					t.Fatalf("v%d moved to %d, but only the joining node 8 may gain shards", v, n)
				}
			}
		}
	}
	// Node 8 should gain roughly 2*vertices/5 replicas and nothing else
	// should move.
	if moved == 0 || moved > vertices {
		t.Fatalf("implausible movement %d for %d vertices", moved, vertices)
	}
}

func TestPlacementHolderLifecycle(t *testing.T) {
	dir := t.TempDir()
	base := Placement{Policy: "rendezvous", Backends: 4, Replication: 2, Seed: 5}
	if err := WritePlacementFile(dir, base); err != nil {
		t.Fatal(err)
	}
	h, ok, err := OpenPlacementHolder(dir)
	if err != nil || !ok {
		t.Fatalf("OpenPlacementHolder: ok=%v err=%v", ok, err)
	}
	if h.Epoch() != 0 {
		t.Fatalf("fresh holder epoch %d, want 0", h.Epoch())
	}

	target, err := h.JoinTarget(4)
	if err != nil {
		t.Fatal(err)
	}
	if target.Epoch != 1 || target.Backends != 5 || !target.HasMember(4) {
		t.Fatalf("bad join target %+v", target)
	}
	if err := h.BeginMigration(target); err != nil {
		t.Fatal(err)
	}
	// Durable intent: a fresh holder sees the pending placement.
	h2, ok, err := OpenPlacementHolder(dir)
	if err != nil || !ok {
		t.Fatalf("reopen: ok=%v err=%v", ok, err)
	}
	if h2.Manifest().Pending == nil || h2.Manifest().Pending.Epoch != 1 {
		t.Fatalf("pending intent not durable: %+v", h2.Manifest())
	}
	// Begin again with the same target is a resume, a different target is
	// an error.
	if err := h.BeginMigration(target); err != nil {
		t.Fatalf("idempotent begin: %v", err)
	}
	other := target
	other.Nodes = []cluster.NodeID{0, 1, 2, 4}
	if err := h.BeginMigration(other); err == nil {
		t.Fatal("begin with a different target must fail while one is pending")
	}

	// Routing still obeys the committed epoch until commit.
	if h.Policy().(ReplicaPolicy).ReplicationFactor() != 2 || h.Epoch() != 0 {
		t.Fatal("routing changed before commit")
	}
	committed, err := h.CommitMigration()
	if err != nil {
		t.Fatal(err)
	}
	if committed.Epoch != 1 || h.Epoch() != 1 || h.Manifest().Pending != nil {
		t.Fatalf("commit left %+v", h.Manifest())
	}

	// A stale reader reloads to the new epoch; history stays monotonic.
	changed, err := h2.Reload()
	if err != nil || !changed {
		t.Fatalf("reload: changed=%v err=%v", changed, err)
	}
	if h2.Epoch() != 1 {
		t.Fatalf("reloaded epoch %d, want 1", h2.Epoch())
	}
	for _, h := range []*PlacementHolder{h, h2} {
		hist := h.History()
		for i := 1; i < len(hist); i++ {
			if hist[i] <= hist[i-1] {
				t.Fatalf("epoch history not monotonic: %v", hist)
			}
		}
	}

	// Abort: drain pending placement is dropped, epoch 1 stays
	// authoritative.
	dt, err := h.DrainTarget(4)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Epoch != 2 || dt.HasMember(4) {
		t.Fatalf("bad drain target %+v", dt)
	}
	if err := h.BeginMigration(dt); err != nil {
		t.Fatal(err)
	}
	if err := h.AbortMigration(); err != nil {
		t.Fatal(err)
	}
	if h.Epoch() != 1 || h.Manifest().Pending != nil {
		t.Fatalf("abort left %+v", h.Manifest())
	}
	m, _, err := ReadManifestFile(dir)
	if err != nil || m.Pending != nil || m.Committed.Epoch != 1 {
		t.Fatalf("abort not durable: %+v err=%v", m, err)
	}
	q, err := os.ReadFile(filepath.Join(dir, QuarantineFile))
	if err != nil {
		t.Fatalf("abort wrote no quarantine record: %v", err)
	}
	if !strings.Contains(string(q), "epoch 2 aborted") || !strings.Contains(string(q), "epoch 1 kept") {
		t.Fatalf("quarantine record %q does not name the aborted/kept epochs", q)
	}
}
