package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"mssg/internal/cluster"
	"mssg/internal/datacutter"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/obs"
)

// Config parameterizes one ingestion run.
type Config struct {
	// FrontEnds is the number of ingest filter copies (the paper varies
	// this between 1 and 8).
	FrontEnds int
	// Backends is the number of store filter copies (back-end nodes).
	Backends int
	// WindowEdges is the block/window size: edges are accumulated per
	// destination and shipped in blocks of this many (§3.2 processes
	// streaming data "in blocks (or windows) of a predetermined size").
	// <= 0 means 4096.
	WindowEdges int
	// AddReverse stores both orientations of every input edge, making
	// the stored graph undirected as in Table 5.1. Default true via
	// NewConfig; zero-value Config leaves it off.
	AddReverse bool
	// Policy is the declustering policy; nil means VertexMod.
	Policy func() Policy
	// ReplicationFactor ships every window to this many distinct
	// back-ends (k-way replication), so queries survive k-1 node losses.
	// <= 1 means no replication. Values > 1 require a policy
	// implementing ReplicaPolicy (rendezvous); the back-end dedup set is
	// per node, so each replica applies a re-shipped window exactly
	// once. Capped at 6.
	ReplicationFactor int
	// ShipRetries is how many times a front-end re-ships a window after
	// an ambiguous (cluster.ErrTimeout) send failure. The back-end
	// deduplicates windows by id, so a re-ship of a window that actually
	// arrived is counted in Stats.DupBlocks, not stored twice. 0 means 2;
	// negative disables retries.
	ShipRetries int
	// Durable makes back-ends persist their window dedup-set through
	// graphdb.Checkpointer, so a restarted back-end resumes from its last
	// committed (frontend, seq) window instead of double-storing a
	// re-shipped stream. Requires databases that implement Checkpointer
	// (grDB); Init fails otherwise.
	Durable bool
	// CheckpointWindows is how many applied windows a durable back-end
	// stores between checkpoints (dedup-set + Flush). <= 0 means 64.
	CheckpointWindows int
}

func (c Config) checkpointWindows() int {
	if c.CheckpointWindows <= 0 {
		return 64
	}
	return c.CheckpointWindows
}

func (c Config) shipRetries() int {
	if c.ShipRetries == 0 {
		return 2
	}
	if c.ShipRetries < 0 {
		return 0
	}
	return c.ShipRetries
}

func (c Config) windowEdges() int {
	if c.WindowEdges <= 0 {
		return 4096
	}
	return c.WindowEdges
}

func (c Config) policy() Policy {
	if c.Policy == nil {
		return VertexMod{}
	}
	return c.Policy()
}

func (c Config) replicationFactor() int {
	if c.ReplicationFactor <= 1 {
		return 1
	}
	return c.ReplicationFactor
}

// Stats aggregates an ingestion run.
type Stats struct {
	// EdgesIn counts edges read by the front-ends (before reversal).
	EdgesIn atomic.Int64
	// EdgesStored counts directed records stored by the back-ends.
	EdgesStored atomic.Int64
	// Blocks counts windows shipped front-end → back-end.
	Blocks atomic.Int64
	// Retries counts window re-ships after ambiguous send failures.
	Retries atomic.Int64
	// DupBlocks counts windows a back-end received more than once and
	// discarded (a retried ship whose first attempt actually arrived, or
	// a duplicate injected by a faulty fabric).
	DupBlocks atomic.Int64
	// ReplicaBlocks counts secondary-copy window ships: each window of a
	// k-way replicated run adds k-1 of these on top of its Blocks entry.
	ReplicaBlocks atomic.Int64
	// ReplicaWindows counts windows a back-end stored as a non-primary
	// replica (standby copies it serves only after a failover).
	ReplicaWindows atomic.Int64
}

const edgeBytes = 16

// encodeEdges packs a window of edges into a stream buffer payload.
func encodeEdges(edges []graph.Edge) []byte {
	b := make([]byte, edgeBytes*len(edges))
	for i, e := range edges {
		binary.LittleEndian.PutUint64(b[edgeBytes*i:], uint64(e.Src))
		binary.LittleEndian.PutUint64(b[edgeBytes*i+8:], uint64(e.Dst))
	}
	return b
}

// decodeEdges unpacks a window payload.
func decodeEdges(b []byte) ([]graph.Edge, error) {
	if len(b)%edgeBytes != 0 {
		return nil, fmt.Errorf("ingest: window payload of %d bytes not a multiple of %d", len(b), edgeBytes)
	}
	edges := make([]graph.Edge, len(b)/edgeBytes)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: graph.VertexID(binary.LittleEndian.Uint64(b[edgeBytes*i:])),
			Dst: graph.VertexID(binary.LittleEndian.Uint64(b[edgeBytes*i+8:])),
		}
	}
	return edges, nil
}

// windowHeaderBytes prefixes every shipped window with {frontend uint32,
// seq uint64}: a globally unique window id, so back-ends can discard the
// window if it arrives a second time (from a ship retry or a fabric-level
// duplicate) and re-shipping is idempotent.
const windowHeaderBytes = 12

func encodeWindow(frontend uint32, seq uint64, edges []graph.Edge) []byte {
	b := make([]byte, windowHeaderBytes+edgeBytes*len(edges))
	binary.LittleEndian.PutUint32(b[0:4], frontend)
	binary.LittleEndian.PutUint64(b[4:12], seq)
	for i, e := range edges {
		binary.LittleEndian.PutUint64(b[windowHeaderBytes+edgeBytes*i:], uint64(e.Src))
		binary.LittleEndian.PutUint64(b[windowHeaderBytes+edgeBytes*i+8:], uint64(e.Dst))
	}
	return b
}

func decodeWindow(b []byte) (frontend uint32, seq uint64, edges []graph.Edge, err error) {
	if len(b) < windowHeaderBytes {
		return 0, 0, nil, fmt.Errorf("ingest: window of %d bytes shorter than its %d-byte header", len(b), windowHeaderBytes)
	}
	frontend = binary.LittleEndian.Uint32(b[0:4])
	seq = binary.LittleEndian.Uint64(b[4:12])
	edges, err = decodeEdges(b[windowHeaderBytes:])
	return frontend, seq, edges, err
}

// windowKey collapses a window id into the dedup-set key. Front-end copy
// counts are tiny (the paper tops out at 8), so 16 bits of frontend and
// 48 bits of sequence cannot collide in practice.
func windowKey(frontend uint32, seq uint64) uint64 {
	return uint64(frontend)<<48 | seq&(1<<48-1)
}

// ingestFilter is the front-end filter: it reads its partition of the
// edge stream, declusters each edge (both orientations when AddReverse),
// and ships per-destination windows on the directed "out" stream.
type ingestFilter struct {
	cfg    Config
	reader graph.EdgeReader
	policy Policy
	stats  *Stats

	copyIdx  int
	blockSeq uint64
	windows  [][]graph.Edge

	// Replicated mode (cfg.ReplicationFactor > 1): windows accumulate
	// per ordered replica set rather than per single destination, since
	// two edges sharing a primary can have different secondaries. Each
	// group's window ships — with one id — to every member; per-node
	// dedup keeps each copy exactly-once.
	repl   ReplicaPolicy
	groups map[uint64]*replicaGroup

	// windowStart[d] is when window d received its first edge; the
	// build-latency histogram measures first-append -> ship.
	windowStart []time.Time
	mBuild      *obs.Histogram
	mShip       *obs.Histogram
	mWinEdges   *obs.Histogram
	mDestEdges  []*obs.Counter
	mReplBlocks *obs.Counter
}

// replicaGroup is one replica set's in-progress window.
type replicaGroup struct {
	dests []cluster.NodeID
	edges []graph.Edge
	start time.Time
}

// groupReplicaCap bounds ReplicationFactor so a replica set packs into a
// 64-bit group key (10 bits per member, backends <= 1024).
const (
	groupReplicaCap  = 6
	groupBackendsCap = 1024
)

func groupKey(dests []cluster.NodeID) uint64 {
	var k uint64
	for _, d := range dests {
		k = k<<10 | uint64(d)&(groupBackendsCap-1)
	}
	return k
}

// registerSkew publishes ingest.decluster_skew_x1000: the ratio of the
// most-loaded destination's edge count to the mean, scaled by 1000
// (1000 = perfectly balanced). Pull-mode, so the per-edge path only pays
// the per-destination counter it already increments.
func registerSkew(reg *obs.Registry, dests []*obs.Counter) {
	reg.RegisterFunc("ingest.decluster_skew_x1000", func() int64 {
		var total, max int64
		for _, c := range dests {
			v := c.Value()
			total += v
			if v > max {
				max = v
			}
		}
		if total == 0 {
			return 0
		}
		mean := float64(total) / float64(len(dests))
		return int64(float64(max) / mean * 1000)
	})
}

// Init implements datacutter.Filter.
func (f *ingestFilter) Init(ctx *datacutter.Context) error {
	out, err := ctx.Output("out")
	if err != nil {
		return err
	}
	if out.Fanout() != f.cfg.Backends {
		return fmt.Errorf("ingest: stream fanout %d != %d backends", out.Fanout(), f.cfg.Backends)
	}
	f.copyIdx = ctx.Instance().Copy
	if s, ok := f.policy.(CopySeeder); ok {
		s.SeedCopy(f.copyIdx)
	}
	if k := f.cfg.replicationFactor(); k > 1 {
		rp, ok := f.policy.(ReplicaPolicy)
		if !ok {
			return fmt.Errorf("ingest: replication factor %d needs a replica-placing policy (rendezvous), got %s",
				k, f.policy.Name())
		}
		if k > groupReplicaCap || f.cfg.Backends > groupBackendsCap {
			return fmt.Errorf("ingest: replication supports at most %d replicas over %d backends, got %d/%d",
				groupReplicaCap, groupBackendsCap, k, f.cfg.Backends)
		}
		if got := rp.ReplicationFactor(); got != k {
			return fmt.Errorf("ingest: policy places %d replicas but config asks for %d", got, k)
		}
		f.repl = rp
		f.groups = make(map[uint64]*replicaGroup)
	}
	f.windows = make([][]graph.Edge, f.cfg.Backends)
	f.windowStart = make([]time.Time, f.cfg.Backends)
	reg := obs.Default()
	f.mBuild = reg.Histogram("ingest.window_build_ns")
	f.mShip = reg.Histogram("ingest.window_ship_ns")
	f.mWinEdges = reg.Histogram("ingest.window_edges")
	f.mDestEdges = make([]*obs.Counter, f.cfg.Backends)
	for d := range f.mDestEdges {
		f.mDestEdges[d] = reg.Counter(fmt.Sprintf("ingest.dest_%02d.edges", d))
	}
	f.mReplBlocks = reg.Counter("ingest.replica_blocks")
	registerSkew(reg, f.mDestEdges)
	return nil
}

// ship sends one window, retrying on ambiguous (ErrTimeout) failures —
// safe because windows carry a unique id and back-ends deduplicate.
func (f *ingestFilter) ship(out *datacutter.StreamWriter, dest int) error {
	if len(f.windows[dest]) == 0 {
		return nil
	}
	f.mWinEdges.Observe(int64(len(f.windows[dest])))
	f.mBuild.ObserveSince(f.windowStart[dest])
	f.blockSeq++
	payload := encodeWindow(uint32(f.copyIdx), f.blockSeq, f.windows[dest])
	f.windows[dest] = f.windows[dest][:0]
	f.stats.Blocks.Add(1)
	shipStart := time.Now()
	defer f.mShip.ObserveSince(shipStart)
	var err error
	for attempt := 0; attempt <= f.cfg.shipRetries(); attempt++ {
		if attempt > 0 {
			f.stats.Retries.Add(1)
		}
		err = out.WriteTo(dest, datacutter.Buffer{Data: payload})
		if err == nil || !errors.Is(err, cluster.ErrTimeout) {
			return err
		}
	}
	return err
}

// shipGroup ships one replica group's window to every member. The same
// payload (same window id) goes to each, so any member can serve the
// shard; retries follow the same ambiguous-timeout rule as ship, and
// per-node dedup makes arrivals exactly-once everywhere.
func (f *ingestFilter) shipGroup(out *datacutter.StreamWriter, g *replicaGroup) error {
	if len(g.edges) == 0 {
		return nil
	}
	f.mWinEdges.Observe(int64(len(g.edges)))
	f.mBuild.ObserveSince(g.start)
	f.blockSeq++
	payload := encodeWindow(uint32(f.copyIdx), f.blockSeq, g.edges)
	g.edges = g.edges[:0]
	f.stats.Blocks.Add(1)
	shipStart := time.Now()
	defer f.mShip.ObserveSince(shipStart)
	for i, dest := range g.dests {
		data := payload
		if i > 0 {
			// The stream owns each sent buffer; secondaries get copies.
			data = append([]byte(nil), payload...)
			f.stats.ReplicaBlocks.Add(1)
			f.mReplBlocks.Inc()
		}
		var err error
		for attempt := 0; attempt <= f.cfg.shipRetries(); attempt++ {
			if attempt > 0 {
				f.stats.Retries.Add(1)
			}
			err = out.WriteTo(int(dest), datacutter.Buffer{Data: data})
			if err == nil || !errors.Is(err, cluster.ErrTimeout) {
				break
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// routeReplicated accumulates e into its replica set's window.
func (f *ingestFilter) routeReplicated(out *datacutter.StreamWriter, e graph.Edge) error {
	dests := f.repl.Replicas(e.Src)
	if len(dests) == 0 || int(dests[0]) < 0 || int(dests[0]) >= f.cfg.Backends {
		return fmt.Errorf("ingest: policy %s placed %v of %d backends", f.policy.Name(), dests, f.cfg.Backends)
	}
	g := f.groups[groupKey(dests)]
	if g == nil {
		g = &replicaGroup{dests: dests}
		f.groups[groupKey(dests)] = g
	}
	if len(g.edges) == 0 {
		g.start = time.Now()
	}
	g.edges = append(g.edges, e)
	f.mDestEdges[dests[0]].Inc() // skew tracks primary placement
	if len(g.edges) >= f.cfg.windowEdges() {
		return f.shipGroup(out, g)
	}
	return nil
}

func (f *ingestFilter) route(out *datacutter.StreamWriter, e graph.Edge) error {
	if f.repl != nil {
		return f.routeReplicated(out, e)
	}
	dest := f.policy.Route(e, f.cfg.Backends)
	if dest < 0 || dest >= f.cfg.Backends {
		return fmt.Errorf("ingest: policy %s routed to %d of %d", f.policy.Name(), dest, f.cfg.Backends)
	}
	if len(f.windows[dest]) == 0 {
		f.windowStart[dest] = time.Now()
	}
	f.windows[dest] = append(f.windows[dest], e)
	f.mDestEdges[dest].Inc()
	if len(f.windows[dest]) >= f.cfg.windowEdges() {
		return f.ship(out, dest)
	}
	return nil
}

// Process implements datacutter.Filter.
func (f *ingestFilter) Process(ctx *datacutter.Context) error {
	out, err := ctx.Output("out")
	if err != nil {
		return err
	}
	for {
		e, err := f.reader.ReadEdge()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("ingest: %s: %w", ctx.Instance(), err)
		}
		if err := graph.ValidateEdge(e); err != nil {
			return err
		}
		f.stats.EdgesIn.Add(1)
		if err := f.route(out, e); err != nil {
			return err
		}
		if f.cfg.AddReverse && e.Src != e.Dst {
			if err := f.route(out, e.Reverse()); err != nil {
				return err
			}
		}
	}
	// Flush partial windows.
	for _, g := range f.groups {
		if err := f.shipGroup(out, g); err != nil {
			return err
		}
	}
	for dest := range f.windows {
		if err := f.ship(out, dest); err != nil {
			return err
		}
	}
	return nil
}

// Finalize implements datacutter.Filter.
func (f *ingestFilter) Finalize(ctx *datacutter.Context) error { return nil }

// storeFilter is the back-end filter: it drains windows from "in" and
// stores them into its node's GraphDB instance. Windows are deduplicated
// by id, so a re-shipped or fabric-duplicated window is stored once.
type storeFilter struct {
	cfg   Config
	db    graphdb.Graph
	stats *Stats

	seen map[uint64]struct{}
	// ckpt is the database's checkpoint interface when cfg.Durable; the
	// dedup-set is staged through it and committed by db.Flush, making
	// (window applied, window remembered) one atomic unit.
	ckpt      graphdb.Checkpointer
	sinceCkpt int

	// Replicated mode: repl and self classify each stored window as a
	// primary or standby copy for the replica-awareness stats.
	repl ReplicaPolicy
	self int

	mStore    *obs.Histogram
	mApplied  *obs.Counter
	mDups     *obs.Counter
	mReplWins *obs.Counter
}

// Init implements datacutter.Filter.
func (f *storeFilter) Init(ctx *datacutter.Context) error {
	f.seen = make(map[uint64]struct{})
	if f.cfg.Durable {
		ck, ok := f.db.(graphdb.Checkpointer)
		if !ok {
			return fmt.Errorf("ingest: durable ingest needs a database implementing graphdb.Checkpointer, got %T", f.db)
		}
		f.ckpt = ck
		blob, err := ck.GetCheckpoint()
		if err != nil {
			return err
		}
		if f.seen, err = decodeSeen(blob); err != nil {
			return err
		}
	}
	if f.cfg.replicationFactor() > 1 {
		if rp, ok := f.cfg.policy().(ReplicaPolicy); ok {
			f.repl = rp
			f.self = ctx.Instance().Copy
		}
	}
	reg := obs.Default()
	f.mStore = reg.Histogram("ingest.store_window_ns")
	f.mApplied = reg.Counter("ingest.windows_applied")
	f.mDups = reg.Counter("ingest.dup_windows")
	f.mReplWins = reg.Counter("ingest.replica_windows_stored")
	return nil
}

// commitCheckpoint stages the dedup-set and flushes the database, making
// everything applied so far durable in one atomic step.
func (f *storeFilter) commitCheckpoint() error {
	if f.ckpt == nil {
		return nil
	}
	if err := f.ckpt.SetCheckpoint(encodeSeen(f.seen)); err != nil {
		return err
	}
	if err := f.db.Flush(); err != nil {
		return err
	}
	f.sinceCkpt = 0
	return nil
}

// apply decodes and stores one window payload, skipping windows this
// copy has already stored.
func (f *storeFilter) apply(data []byte) error {
	frontend, seq, edges, err := decodeWindow(data)
	if err != nil {
		return err
	}
	key := windowKey(frontend, seq)
	if _, dup := f.seen[key]; dup {
		f.stats.DupBlocks.Add(1)
		f.mDups.Inc()
		return nil
	}
	f.seen[key] = struct{}{}
	// Every edge of a replicated window shares one replica set, so the
	// first edge classifies the whole window as primary or standby here.
	if f.repl != nil && len(edges) > 0 {
		if int(f.repl.Replicas(edges[0].Src)[0]) != f.self {
			f.stats.ReplicaWindows.Add(1)
			f.mReplWins.Inc()
		}
	}
	start := time.Now()
	if err := f.db.StoreEdges(edges); err != nil {
		return err
	}
	f.mStore.ObserveSince(start)
	f.mApplied.Inc()
	f.stats.EdgesStored.Add(int64(len(edges)))
	if f.ckpt != nil {
		f.sinceCkpt++
		if f.sinceCkpt >= f.cfg.checkpointWindows() {
			return f.commitCheckpoint()
		}
	}
	return nil
}

// Process implements datacutter.Filter.
func (f *storeFilter) Process(ctx *datacutter.Context) error {
	in, err := ctx.Input("in")
	if err != nil {
		return err
	}
	for {
		buf, err := in.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := f.apply(buf.Data); err != nil {
			return err
		}
	}
}

// Finalize implements datacutter.Filter: make the stored graph — and,
// when durable, the final dedup-set — durable and retrievable before the
// query phase starts.
func (f *storeFilter) Finalize(ctx *datacutter.Context) error {
	if f.ckpt != nil {
		return f.commitCheckpoint()
	}
	return f.db.Flush()
}

// BuildGraph assembles the ingestion filter graph (Fig 3.1's front-end →
// back-end flow):
//
//	ingest[0..F) --directed--> store[0..B)
//
// makeReader returns front-end copy i's partition of the input stream;
// db returns back-end copy i's GraphDB instance. Placement of the two
// filters is the caller's: the engine puts store copies on the storage
// nodes and ingest copies on the front-end nodes.
func BuildGraph(g *datacutter.Graph, cfg Config, stats *Stats,
	makeReader func(copy int) (graph.EdgeReader, error),
	db func(copy int) graphdb.Graph,
	ingestPlacement, storePlacement datacutter.Placement,
) error {
	if cfg.FrontEnds < 1 || cfg.Backends < 1 {
		return fmt.Errorf("ingest: need >= 1 front-end and >= 1 back-end, got %d/%d", cfg.FrontEnds, cfg.Backends)
	}
	err := g.AddFilter("ingest", func(in datacutter.Instance) (datacutter.Filter, error) {
		r, err := makeReader(in.Copy)
		if err != nil {
			return nil, err
		}
		return &ingestFilter{cfg: cfg, reader: r, policy: cfg.policy(), stats: stats}, nil
	}, ingestPlacement)
	if err != nil {
		return err
	}
	err = g.AddFilter("store", func(in datacutter.Instance) (datacutter.Filter, error) {
		d := db(in.Copy)
		if d == nil {
			return nil, fmt.Errorf("ingest: no database for store copy %d", in.Copy)
		}
		return &storeFilter{cfg: cfg, db: d, stats: stats}, nil
	}, storePlacement)
	if err != nil {
		return err
	}
	return g.Connect("ingest", "out", "store", "in", datacutter.Directed)
}
