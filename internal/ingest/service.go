package ingest

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"mssg/internal/datacutter"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

// Config parameterizes one ingestion run.
type Config struct {
	// FrontEnds is the number of ingest filter copies (the paper varies
	// this between 1 and 8).
	FrontEnds int
	// Backends is the number of store filter copies (back-end nodes).
	Backends int
	// WindowEdges is the block/window size: edges are accumulated per
	// destination and shipped in blocks of this many (§3.2 processes
	// streaming data "in blocks (or windows) of a predetermined size").
	// <= 0 means 4096.
	WindowEdges int
	// AddReverse stores both orientations of every input edge, making
	// the stored graph undirected as in Table 5.1. Default true via
	// NewConfig; zero-value Config leaves it off.
	AddReverse bool
	// Policy is the declustering policy; nil means VertexMod.
	Policy func() Policy
}

func (c Config) windowEdges() int {
	if c.WindowEdges <= 0 {
		return 4096
	}
	return c.WindowEdges
}

func (c Config) policy() Policy {
	if c.Policy == nil {
		return VertexMod{}
	}
	return c.Policy()
}

// Stats aggregates an ingestion run.
type Stats struct {
	// EdgesIn counts edges read by the front-ends (before reversal).
	EdgesIn atomic.Int64
	// EdgesStored counts directed records stored by the back-ends.
	EdgesStored atomic.Int64
	// Blocks counts windows shipped front-end → back-end.
	Blocks atomic.Int64
}

const edgeBytes = 16

// encodeEdges packs a window of edges into a stream buffer payload.
func encodeEdges(edges []graph.Edge) []byte {
	b := make([]byte, edgeBytes*len(edges))
	for i, e := range edges {
		binary.LittleEndian.PutUint64(b[edgeBytes*i:], uint64(e.Src))
		binary.LittleEndian.PutUint64(b[edgeBytes*i+8:], uint64(e.Dst))
	}
	return b
}

// decodeEdges unpacks a window payload.
func decodeEdges(b []byte) ([]graph.Edge, error) {
	if len(b)%edgeBytes != 0 {
		return nil, fmt.Errorf("ingest: window payload of %d bytes not a multiple of %d", len(b), edgeBytes)
	}
	edges := make([]graph.Edge, len(b)/edgeBytes)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: graph.VertexID(binary.LittleEndian.Uint64(b[edgeBytes*i:])),
			Dst: graph.VertexID(binary.LittleEndian.Uint64(b[edgeBytes*i+8:])),
		}
	}
	return edges, nil
}

// ingestFilter is the front-end filter: it reads its partition of the
// edge stream, declusters each edge (both orientations when AddReverse),
// and ships per-destination windows on the directed "out" stream.
type ingestFilter struct {
	cfg    Config
	reader graph.EdgeReader
	policy Policy
	stats  *Stats

	windows [][]graph.Edge
}

// Init implements datacutter.Filter.
func (f *ingestFilter) Init(ctx *datacutter.Context) error {
	out, err := ctx.Output("out")
	if err != nil {
		return err
	}
	if out.Fanout() != f.cfg.Backends {
		return fmt.Errorf("ingest: stream fanout %d != %d backends", out.Fanout(), f.cfg.Backends)
	}
	f.windows = make([][]graph.Edge, f.cfg.Backends)
	return nil
}

func (f *ingestFilter) ship(out *datacutter.StreamWriter, dest int) error {
	if len(f.windows[dest]) == 0 {
		return nil
	}
	payload := encodeEdges(f.windows[dest])
	f.windows[dest] = f.windows[dest][:0]
	f.stats.Blocks.Add(1)
	return out.WriteTo(dest, datacutter.Buffer{Data: payload})
}

func (f *ingestFilter) route(out *datacutter.StreamWriter, e graph.Edge) error {
	dest := f.policy.Route(e, f.cfg.Backends)
	if dest < 0 || dest >= f.cfg.Backends {
		return fmt.Errorf("ingest: policy %s routed to %d of %d", f.policy.Name(), dest, f.cfg.Backends)
	}
	f.windows[dest] = append(f.windows[dest], e)
	if len(f.windows[dest]) >= f.cfg.windowEdges() {
		return f.ship(out, dest)
	}
	return nil
}

// Process implements datacutter.Filter.
func (f *ingestFilter) Process(ctx *datacutter.Context) error {
	out, err := ctx.Output("out")
	if err != nil {
		return err
	}
	for {
		e, err := f.reader.ReadEdge()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("ingest: %s: %w", ctx.Instance(), err)
		}
		if err := graph.ValidateEdge(e); err != nil {
			return err
		}
		f.stats.EdgesIn.Add(1)
		if err := f.route(out, e); err != nil {
			return err
		}
		if f.cfg.AddReverse && e.Src != e.Dst {
			if err := f.route(out, e.Reverse()); err != nil {
				return err
			}
		}
	}
	// Flush partial windows.
	for dest := range f.windows {
		if err := f.ship(out, dest); err != nil {
			return err
		}
	}
	return nil
}

// Finalize implements datacutter.Filter.
func (f *ingestFilter) Finalize(ctx *datacutter.Context) error { return nil }

// storeFilter is the back-end filter: it drains windows from "in" and
// stores them into its node's GraphDB instance.
type storeFilter struct {
	db    graphdb.Graph
	stats *Stats
}

// Init implements datacutter.Filter.
func (f *storeFilter) Init(ctx *datacutter.Context) error { return nil }

// Process implements datacutter.Filter.
func (f *storeFilter) Process(ctx *datacutter.Context) error {
	in, err := ctx.Input("in")
	if err != nil {
		return err
	}
	for {
		buf, err := in.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		edges, err := decodeEdges(buf.Data)
		if err != nil {
			return err
		}
		if err := f.db.StoreEdges(edges); err != nil {
			return err
		}
		f.stats.EdgesStored.Add(int64(len(edges)))
	}
}

// Finalize implements datacutter.Filter: make the stored graph durable
// and retrievable before the query phase starts.
func (f *storeFilter) Finalize(ctx *datacutter.Context) error {
	return f.db.Flush()
}

// BuildGraph assembles the ingestion filter graph (Fig 3.1's front-end →
// back-end flow):
//
//	ingest[0..F) --directed--> store[0..B)
//
// makeReader returns front-end copy i's partition of the input stream;
// db returns back-end copy i's GraphDB instance. Placement of the two
// filters is the caller's: the engine puts store copies on the storage
// nodes and ingest copies on the front-end nodes.
func BuildGraph(g *datacutter.Graph, cfg Config, stats *Stats,
	makeReader func(copy int) (graph.EdgeReader, error),
	db func(copy int) graphdb.Graph,
	ingestPlacement, storePlacement datacutter.Placement,
) error {
	if cfg.FrontEnds < 1 || cfg.Backends < 1 {
		return fmt.Errorf("ingest: need >= 1 front-end and >= 1 back-end, got %d/%d", cfg.FrontEnds, cfg.Backends)
	}
	err := g.AddFilter("ingest", func(in datacutter.Instance) (datacutter.Filter, error) {
		r, err := makeReader(in.Copy)
		if err != nil {
			return nil, err
		}
		return &ingestFilter{cfg: cfg, reader: r, policy: cfg.policy(), stats: stats}, nil
	}, ingestPlacement)
	if err != nil {
		return err
	}
	err = g.AddFilter("store", func(in datacutter.Instance) (datacutter.Filter, error) {
		d := db(in.Copy)
		if d == nil {
			return nil, fmt.Errorf("ingest: no database for store copy %d", in.Copy)
		}
		return &storeFilter{db: d, stats: stats}, nil
	}, storePlacement)
	if err != nil {
		return err
	}
	return g.Connect("ingest", "out", "store", "in", datacutter.Directed)
}
