package ingest

import (
	"bytes"
	"testing"
)

// FuzzPlacementDecode: the placement decoder faces whatever bytes happen
// to sit in placement.mssg, so it must never panic, must reject anything
// a valid encoder cannot produce, and — when it does accept — must
// round-trip exactly (decode ∘ encode = id).
func FuzzPlacementDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(placementMagic))
	f.Add(EncodePlacement(Placement{Policy: "rendezvous", Backends: 8, Replication: 2, Seed: 1}))
	f.Add(EncodePlacement(Placement{Policy: "vertex-mod", Backends: 1, Replication: 1, Seed: DefaultPlacementSeed}))
	long := EncodePlacement(Placement{Policy: "rendezvous", Backends: 1 << 19, Replication: 6, Seed: ^uint64(0)})
	f.Add(long)
	f.Add(append(long, 0, 1, 2))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePlacement(data)
		if err != nil {
			return
		}
		if p.Backends < 1 || p.Replication < 1 || p.Replication > p.Backends || len(p.Policy) > 64 {
			t.Fatalf("decoder accepted invalid placement %+v", p)
		}
		if !bytes.Equal(EncodePlacement(p), data) {
			t.Fatalf("accepted input is not canonical: %x vs %x", data, EncodePlacement(p))
		}
	})
}
