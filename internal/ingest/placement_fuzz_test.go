package ingest

import (
	"bytes"
	"testing"

	"mssg/internal/cluster"
)

// FuzzPlacementDecode: the manifest decoder faces whatever bytes happen
// to sit in placement.mssg, so it must never panic, must reject anything
// a valid encoder cannot produce, and — when it does accept — must
// round-trip exactly (decode ∘ encode = id). The corpus seeds both
// layouts: pre-epoch MSSGPL01 manifests (PR 7 directories must keep
// decoding, reporting epoch 0) and MSSGPL02 manifests with member
// subsets and a pending placement.
func FuzzPlacementDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(placementMagic))
	f.Add([]byte(manifestMagic))
	// v1 layout: quiescent epoch-0 placements.
	f.Add(EncodePlacement(Placement{Policy: "rendezvous", Backends: 8, Replication: 2, Seed: 1}))
	f.Add(EncodePlacement(Placement{Policy: "vertex-mod", Backends: 1, Replication: 1, Seed: DefaultPlacementSeed}))
	long := EncodePlacement(Placement{Policy: "rendezvous", Backends: 1 << 19, Replication: 6, Seed: ^uint64(0)})
	f.Add(long)
	f.Add(append(long, 0, 1, 2))
	// v2 layout: advanced epoch, member subset, in-flight migration.
	f.Add(EncodePlacement(Placement{Policy: "rendezvous", Backends: 8, Replication: 2, Seed: 1, Epoch: 3}))
	f.Add(EncodePlacement(Placement{
		Policy: "rendezvous", Backends: 9, Replication: 2, Seed: 1, Epoch: 5,
		Nodes: []cluster.NodeID{0, 1, 3, 4, 8},
	}))
	f.Add(EncodeManifest(Manifest{
		Committed: Placement{Policy: "rendezvous", Backends: 8, Replication: 2, Seed: 7, Epoch: 2},
		Pending: &Placement{Policy: "rendezvous", Backends: 9, Replication: 2, Seed: 7, Epoch: 3,
			Nodes: []cluster.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8}},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		check := func(p Placement) {
			if p.Backends < 1 || p.Replication < 1 || p.Replication > p.MemberCount() || len(p.Policy) > 64 {
				t.Fatalf("decoder accepted invalid placement %+v", p)
			}
			for i, n := range p.Nodes {
				if int(n) >= p.Backends || (i > 0 && n <= p.Nodes[i-1]) {
					t.Fatalf("decoder accepted invalid member list %v", p.Nodes)
				}
			}
		}
		check(m.Committed)
		if m.Pending != nil {
			check(*m.Pending)
			if m.Pending.Epoch != m.Committed.Epoch+1 {
				t.Fatalf("decoder accepted non-successor pending epoch %d after %d", m.Pending.Epoch, m.Committed.Epoch)
			}
		}
		if !bytes.Equal(EncodeManifest(m), data) {
			t.Fatalf("accepted input is not canonical: %x vs %x", data, EncodeManifest(m))
		}
	})
}
