package ingest

import (
	"sync"
	"testing"

	"mssg/internal/graph"
)

func TestGreedyClusterStickyOwnership(t *testing.T) {
	g := NewGreedyCluster(0)
	if !g.GloballyMapped() {
		t.Fatal("greedy policy must report a usable mapping (directory)")
	}
	first := g.Route(graph.Edge{Src: 10, Dst: 20}, 4)
	for i := 0; i < 5; i++ {
		if got := g.Route(graph.Edge{Src: 10, Dst: graph.VertexID(30 + i)}, 4); got != first {
			t.Fatalf("vertex 10 moved from %d to %d", first, got)
		}
	}
	if got := g.OwnerOf(10); int(got) != first {
		t.Fatalf("OwnerOf(10) = %d, want %d", got, first)
	}
}

func TestGreedyClusterAffinity(t *testing.T) {
	g := NewGreedyCluster(1 << 30) // effectively unbounded slack
	home := g.Route(graph.Edge{Src: 1, Dst: 2}, 4)
	// Vertex 2's first source edge points back at 1: affinity must
	// co-locate it.
	if got := g.Route(graph.Edge{Src: 2, Dst: 1}, 4); got != home {
		t.Fatalf("affinity ignored: 2 went to %d, 1 lives on %d", got, home)
	}
	// A chain of new vertices each touching the previous one all lands
	// on the same node when slack is unbounded.
	prev := graph.VertexID(2)
	for v := graph.VertexID(3); v < 20; v++ {
		if got := g.Route(graph.Edge{Src: v, Dst: prev}, 4); got != home {
			t.Fatalf("chain vertex %d went to %d, want %d", v, got, home)
		}
		prev = v
	}
}

func TestGreedyClusterBalance(t *testing.T) {
	g := NewGreedyCluster(8) // tight slack
	// A star around vertex 0: pure affinity would pile everything onto
	// one node; the slack bound must spread the load.
	g.Route(graph.Edge{Src: 0, Dst: 1}, 4)
	for v := graph.VertexID(1); v < 400; v++ {
		g.Route(graph.Edge{Src: v, Dst: 0}, 4)
	}
	loads := g.Loads()
	min, max := loads[0], loads[0]
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max > min+8+1 {
		t.Fatalf("imbalance beyond slack: %v", loads)
	}
	if g.DirectorySize() != 400 {
		t.Fatalf("directory has %d entries, want 400", g.DirectorySize())
	}
}

func TestGreedyClusterSharedAcrossFrontEnds(t *testing.T) {
	// The same instance shared by concurrent routers must keep
	// ownership consistent.
	g := NewGreedyCluster(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := graph.VertexID(i % 50)
				g.Route(graph.Edge{Src: v, Dst: graph.VertexID(i)}, 4)
			}
		}()
	}
	wg.Wait()
	for v := graph.VertexID(0); v < 50; v++ {
		o := g.OwnerOf(v)
		if got := g.Route(graph.Edge{Src: v, Dst: 999}, 4); got != int(o) {
			t.Fatalf("vertex %d owner drifted: %d vs %d", v, got, o)
		}
	}
}
