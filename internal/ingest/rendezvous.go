package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"mssg/internal/cluster"
	"mssg/internal/graph"
)

// ReplicaPolicy is implemented by declustering policies that place k
// copies of every vertex's adjacency. The ingest filter ships each
// window to all k nodes of its group; the query layer uses Replicas as
// the failover directory (try the primary, fall back down the list).
type ReplicaPolicy interface {
	Policy
	// Replicas returns vertex v's ordered replica set, primary first.
	// Every node computes the same list from v alone, so there is no
	// directory service to lose.
	Replicas(v graph.VertexID) []cluster.NodeID
	// ReplicationFactor returns k, the length of every Replicas list.
	ReplicationFactor() int
}

// DefaultPlacementSeed is the hash seed baked into placements that don't
// choose their own ("mssg" in ASCII).
const DefaultPlacementSeed uint64 = 0x6d737367

// Rendezvous is highest-random-weight (HRW) declustering: every node n
// is scored by hash(seed, v, n) and vertex v's adjacency lives on the k
// top-scoring nodes. Two properties make it the replication policy:
// placement is derivable anywhere from v alone (a globally known
// mapping, like GID%p), and it is minimally disruptive — removing a node
// only moves the shards that node actually held, because the relative
// order of all other nodes' scores is unchanged.
type Rendezvous struct {
	// Backends is the declared node set size [0, Backends). Zero means
	// unconfigured: Route still works from its backends argument, but
	// the global-mapping and replica directory features are off.
	Backends int
	// Factor is k, the copies per vertex; clamped to [1, Backends].
	Factor int
	// Seed perturbs the hash so distinct deployments shard differently.
	// Zero means DefaultPlacementSeed.
	Seed uint64
}

// NewRendezvous returns a configured HRW policy placing k replicas over
// backends nodes. seed 0 selects DefaultPlacementSeed.
func NewRendezvous(backends, k int, seed uint64) *Rendezvous {
	if k < 1 {
		k = 1
	}
	if backends > 0 && k > backends {
		k = backends
	}
	return &Rendezvous{Backends: backends, Factor: k, Seed: seed}
}

// Name implements Policy.
func (r *Rendezvous) Name() string { return "rendezvous" }

func (r *Rendezvous) seed() uint64 {
	if r.Seed == 0 {
		return DefaultPlacementSeed
	}
	return r.Seed
}

// hrwMix is the splitmix64 finalizer: cheap, full-avalanche, and good
// enough that per-node scores behave as independent uniform draws.
func hrwMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (r *Rendezvous) score(v graph.VertexID, node int) uint64 {
	return hrwMix(r.seed() ^ hrwMix(uint64(v)) ^ (uint64(node)+1)*0x9e3779b97f4a7c15)
}

// RankedOver returns the k top-scoring members of nodes for v,
// descending by score (ties broken by lower node ID, which cannot favor
// any node systematically because scores are full-width hashes). It is
// the node-set-general core that the elasticity property tests exercise:
// removing one member of nodes changes v's top-k only if the removed
// node was in it.
func (r *Rendezvous) RankedOver(v graph.VertexID, nodes []cluster.NodeID, k int) []cluster.NodeID {
	if k > len(nodes) {
		k = len(nodes)
	}
	if k <= 0 {
		return nil
	}
	top := make([]cluster.NodeID, 0, k)
	scores := make([]uint64, 0, k)
	for _, n := range nodes {
		s := r.score(v, int(n))
		i := len(top)
		for i > 0 && (scores[i-1] < s || (scores[i-1] == s && top[i-1] > n)) {
			i--
		}
		if i >= k {
			continue
		}
		if len(top) < k {
			top = append(top, 0)
			scores = append(scores, 0)
		}
		copy(top[i+1:], top[i:])
		copy(scores[i+1:], scores[i:])
		top[i] = n
		scores[i] = s
	}
	return top
}

func (r *Rendezvous) rank(v graph.VertexID, backends, k int) []cluster.NodeID {
	nodes := make([]cluster.NodeID, backends)
	for i := range nodes {
		nodes[i] = cluster.NodeID(i)
	}
	return r.RankedOver(v, nodes, k)
}

// primary is the allocation-free top-1 ranking for the per-edge and
// per-fringe-vertex hot paths. Safe for concurrent use: Rendezvous holds
// no mutable state.
func (r *Rendezvous) primary(v graph.VertexID, backends int) cluster.NodeID {
	best := cluster.NodeID(0)
	bestScore := r.score(v, 0)
	for n := 1; n < backends; n++ {
		if s := r.score(v, n); s > bestScore {
			best, bestScore = cluster.NodeID(n), s
		}
	}
	return best
}

// Route implements Policy: the edge goes to its source vertex's primary
// (top-scoring) node, keeping whole adjacency lists together exactly
// like VertexMod does.
func (r *Rendezvous) Route(e graph.Edge, backends int) int {
	return int(r.primary(e.Src, backends))
}

// GloballyMapped implements Policy: true once the node set is declared,
// since every node can then rank any vertex locally.
func (r *Rendezvous) GloballyMapped() bool { return r.Backends > 0 }

// OwnerOf implements DirectoryPolicy for a configured policy: the
// primary replica. BFS known-mapping routing uses it exactly as it uses
// GreedyCluster's directory.
func (r *Rendezvous) OwnerOf(v graph.VertexID) cluster.NodeID {
	return r.primary(v, r.Backends)
}

// Replicas implements ReplicaPolicy.
func (r *Rendezvous) Replicas(v graph.VertexID) []cluster.NodeID {
	return r.rank(v, r.Backends, r.ReplicationFactor())
}

// ReplicationFactor implements ReplicaPolicy.
func (r *Rendezvous) ReplicationFactor() int {
	k := r.Factor
	if k < 1 {
		k = 1
	}
	if r.Backends > 0 && k > r.Backends {
		k = r.Backends
	}
	return k
}

// Placement is the durable record of how a database directory was
// declustered: which policy, over how many back-ends, with how many
// replicas, under which seed. mssg-ingest writes it next to the node
// databases; mssg-query reads it back so query-time routing and failover
// reconstruct the exact ingest-time mapping without re-deriving flags.
type Placement struct {
	Policy      string
	Backends    int
	Replication int
	Seed        uint64
}

// NewPolicy constructs the declustering policy the placement describes.
func (p Placement) NewPolicy() (Policy, error) {
	if p.Policy == "rendezvous" {
		return NewRendezvous(p.Backends, p.Replication, p.Seed), nil
	}
	return PolicyByName(p.Policy)
}

// placementMagic versions the codec; bump the suffix on layout changes.
const placementMagic = "MSSGPL01"

// PlacementFile is the placement manifest's name under the database
// working directory.
const PlacementFile = "placement.mssg"

// EncodePlacement serializes p: magic, length-prefixed policy name,
// backends, replication, seed, CRC32 trailer.
func EncodePlacement(p Placement) []byte {
	b := make([]byte, 0, len(placementMagic)+2+len(p.Policy)+4+4+8+4)
	b = append(b, placementMagic...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Policy)))
	b = append(b, p.Policy...)
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Backends))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Replication))
	b = binary.LittleEndian.AppendUint64(b, p.Seed)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// DecodePlacement parses and validates an encoded placement. It must
// never panic on arbitrary input (fuzzed) and rejects anything a valid
// encoder cannot produce.
func DecodePlacement(b []byte) (Placement, error) {
	var p Placement
	if len(b) < len(placementMagic)+2 {
		return p, fmt.Errorf("ingest: placement of %d bytes is shorter than its header", len(b))
	}
	if string(b[:len(placementMagic)]) != placementMagic {
		return p, fmt.Errorf("ingest: bad placement magic %q", b[:len(placementMagic)])
	}
	if len(b) < 4 {
		return p, fmt.Errorf("ingest: placement too short for its checksum")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return p, fmt.Errorf("ingest: placement checksum mismatch")
	}
	rest := body[len(placementMagic):]
	nameLen := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	const maxName = 64
	if nameLen > maxName || len(rest) != nameLen+4+4+8 {
		return p, fmt.Errorf("ingest: placement body of %d bytes inconsistent with name length %d", len(rest), nameLen)
	}
	p.Policy = string(rest[:nameLen])
	rest = rest[nameLen:]
	p.Backends = int(binary.LittleEndian.Uint32(rest))
	p.Replication = int(binary.LittleEndian.Uint32(rest[4:]))
	p.Seed = binary.LittleEndian.Uint64(rest[8:])
	if p.Backends < 1 || p.Backends > 1<<20 {
		return p, fmt.Errorf("ingest: placement declares %d backends", p.Backends)
	}
	if p.Replication < 1 || p.Replication > p.Backends {
		return p, fmt.Errorf("ingest: placement declares replication %d over %d backends", p.Replication, p.Backends)
	}
	return p, nil
}

// WritePlacementFile persists p under dir atomically (write-temp,
// rename), so a crashed writer leaves either the old manifest or none.
func WritePlacementFile(dir string, p Placement) error {
	tmp := filepath.Join(dir, PlacementFile+".tmp")
	if err := os.WriteFile(tmp, EncodePlacement(p), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, PlacementFile))
}

// ReadPlacementFile loads dir's placement manifest. ok is false when no
// manifest exists (a pre-replication directory); a present-but-corrupt
// manifest is an error, not a silent fallback, because guessing the
// wrong placement silently misroutes every query.
func ReadPlacementFile(dir string) (p Placement, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, PlacementFile))
	if os.IsNotExist(err) {
		return Placement{}, false, nil
	}
	if err != nil {
		return Placement{}, false, err
	}
	p, err = DecodePlacement(b)
	if err != nil {
		return Placement{}, false, err
	}
	return p, true, nil
}
