package ingest

import (
	"fmt"

	"mssg/internal/cluster"
	"mssg/internal/graph"
)

// ReplicaPolicy is implemented by declustering policies that place k
// copies of every vertex's adjacency. The ingest filter ships each
// window to all k nodes of its group; the query layer uses Replicas as
// the failover directory (try the primary, fall back down the list).
type ReplicaPolicy interface {
	Policy
	// Replicas returns vertex v's ordered replica set, primary first.
	// Every node computes the same list from v alone, so there is no
	// directory service to lose.
	Replicas(v graph.VertexID) []cluster.NodeID
	// ReplicationFactor returns k, the length of every Replicas list.
	ReplicationFactor() int
}

// DefaultPlacementSeed is the hash seed baked into placements that don't
// choose their own ("mssg" in ASCII).
const DefaultPlacementSeed uint64 = 0x6d737367

// Rendezvous is highest-random-weight (HRW) declustering: every node n
// is scored by hash(seed, v, n) and vertex v's adjacency lives on the k
// top-scoring nodes. Two properties make it the replication policy:
// placement is derivable anywhere from v alone (a globally known
// mapping, like GID%p), and it is minimally disruptive — removing a node
// only moves the shards that node actually held, because the relative
// order of all other nodes' scores is unchanged.
type Rendezvous struct {
	// Backends is the declared node-ID space [0, Backends). Zero means
	// unconfigured: Route still works from its backends argument, but
	// the global-mapping and replica directory features are off.
	Backends int
	// Factor is k, the copies per vertex; clamped to [1, members].
	Factor int
	// Seed perturbs the hash so distinct deployments shard differently.
	// Zero means DefaultPlacementSeed.
	Seed uint64
	// Nodes, when non-nil, restricts placement to this ascending subset
	// of [0, Backends) — the cluster's current members. Nil means every
	// ID in [0, Backends) is a member (the pre-elasticity behaviour).
	// Scores are a function of (seed, v, node ID) alone, so growing or
	// shrinking Nodes moves only the shards the delta actually touches.
	Nodes []cluster.NodeID
}

// NewRendezvous returns a configured HRW policy placing k replicas over
// backends nodes. seed 0 selects DefaultPlacementSeed.
func NewRendezvous(backends, k int, seed uint64) *Rendezvous {
	if k < 1 {
		k = 1
	}
	if backends > 0 && k > backends {
		k = backends
	}
	return &Rendezvous{Backends: backends, Factor: k, Seed: seed}
}

// NewRendezvousOver returns an HRW policy whose members are the given
// subset of [0, backends). nodes must be ascending and duplicate-free;
// nil means all of [0, backends).
func NewRendezvousOver(backends, k int, seed uint64, nodes []cluster.NodeID) *Rendezvous {
	r := NewRendezvous(backends, k, seed)
	r.Nodes = nodes
	if n := len(nodes); n > 0 && r.Factor > n {
		r.Factor = n
	}
	return r
}

// Name implements Policy.
func (r *Rendezvous) Name() string { return "rendezvous" }

func (r *Rendezvous) seed() uint64 {
	if r.Seed == 0 {
		return DefaultPlacementSeed
	}
	return r.Seed
}

// hrwMix is the splitmix64 finalizer: cheap, full-avalanche, and good
// enough that per-node scores behave as independent uniform draws.
func hrwMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (r *Rendezvous) score(v graph.VertexID, node int) uint64 {
	return hrwMix(r.seed() ^ hrwMix(uint64(v)) ^ (uint64(node)+1)*0x9e3779b97f4a7c15)
}

// RankedOver returns the k top-scoring members of nodes for v,
// descending by score (ties broken by lower node ID, which cannot favor
// any node systematically because scores are full-width hashes). It is
// the node-set-general core that the elasticity property tests exercise:
// removing one member of nodes changes v's top-k only if the removed
// node was in it.
func (r *Rendezvous) RankedOver(v graph.VertexID, nodes []cluster.NodeID, k int) []cluster.NodeID {
	if k > len(nodes) {
		k = len(nodes)
	}
	if k <= 0 {
		return nil
	}
	top := make([]cluster.NodeID, 0, k)
	scores := make([]uint64, 0, k)
	for _, n := range nodes {
		s := r.score(v, int(n))
		i := len(top)
		for i > 0 && (scores[i-1] < s || (scores[i-1] == s && top[i-1] > n)) {
			i--
		}
		if i >= k {
			continue
		}
		if len(top) < k {
			top = append(top, 0)
			scores = append(scores, 0)
		}
		copy(top[i+1:], top[i:])
		copy(scores[i+1:], scores[i:])
		top[i] = n
		scores[i] = s
	}
	return top
}

func (r *Rendezvous) rank(v graph.VertexID, backends, k int) []cluster.NodeID {
	if r.Nodes != nil {
		return r.RankedOver(v, r.Nodes, k)
	}
	nodes := make([]cluster.NodeID, backends)
	for i := range nodes {
		nodes[i] = cluster.NodeID(i)
	}
	return r.RankedOver(v, nodes, k)
}

// primary is the allocation-free top-1 ranking for the per-edge and
// per-fringe-vertex hot paths. Safe for concurrent use: Rendezvous holds
// no mutable state.
func (r *Rendezvous) primary(v graph.VertexID, backends int) cluster.NodeID {
	if r.Nodes != nil {
		best := r.Nodes[0]
		bestScore := r.score(v, int(best))
		for _, n := range r.Nodes[1:] {
			if s := r.score(v, int(n)); s > bestScore {
				best, bestScore = n, s
			}
		}
		return best
	}
	best := cluster.NodeID(0)
	bestScore := r.score(v, 0)
	for n := 1; n < backends; n++ {
		if s := r.score(v, n); s > bestScore {
			best, bestScore = cluster.NodeID(n), s
		}
	}
	return best
}

// Route implements Policy: the edge goes to its source vertex's primary
// (top-scoring) node, keeping whole adjacency lists together exactly
// like VertexMod does.
func (r *Rendezvous) Route(e graph.Edge, backends int) int {
	return int(r.primary(e.Src, backends))
}

// GloballyMapped implements Policy: true once the node set is declared,
// since every node can then rank any vertex locally.
func (r *Rendezvous) GloballyMapped() bool { return r.Backends > 0 || r.Nodes != nil }

// OwnerOf implements DirectoryPolicy for a configured policy: the
// primary replica. BFS known-mapping routing uses it exactly as it uses
// GreedyCluster's directory.
func (r *Rendezvous) OwnerOf(v graph.VertexID) cluster.NodeID {
	return r.primary(v, r.Backends)
}

// Replicas implements ReplicaPolicy.
func (r *Rendezvous) Replicas(v graph.VertexID) []cluster.NodeID {
	return r.rank(v, r.Backends, r.ReplicationFactor())
}

// ReplicationFactor implements ReplicaPolicy.
func (r *Rendezvous) ReplicationFactor() int {
	k := r.Factor
	if k < 1 {
		k = 1
	}
	if r.Nodes != nil {
		if k > len(r.Nodes) {
			k = len(r.Nodes)
		}
		return k
	}
	if r.Backends > 0 && k > r.Backends {
		k = r.Backends
	}
	return k
}

// Placement is the durable record of how a database directory was
// declustered: which policy, over how many back-ends, with how many
// replicas, under which seed. mssg-ingest writes it next to the node
// databases; mssg-query reads it back so query-time routing and failover
// reconstruct the exact ingest-time mapping without re-deriving flags.
type Placement struct {
	Policy      string
	Backends    int
	Replication int
	Seed        uint64
	// Epoch is the placement's version: 0 at ingest time, incremented by
	// every committed migration. Routing layers compare epochs, never
	// contents, to decide whether a manifest is stale.
	Epoch uint64
	// Nodes, when non-nil, is the ascending member subset of
	// [0, Backends) — nodes that have joined minus nodes that have
	// drained. Nil means all of [0, Backends), which is what every
	// pre-elasticity (epoch-0) placement describes.
	Nodes []cluster.NodeID
}

// Members returns the placement's member node list, ascending: Nodes if
// explicit, otherwise all of [0, Backends).
func (p Placement) Members() []cluster.NodeID {
	if p.Nodes != nil {
		return append([]cluster.NodeID(nil), p.Nodes...)
	}
	m := make([]cluster.NodeID, p.Backends)
	for i := range m {
		m[i] = cluster.NodeID(i)
	}
	return m
}

// MemberCount returns the number of member nodes.
func (p Placement) MemberCount() int {
	if p.Nodes != nil {
		return len(p.Nodes)
	}
	return p.Backends
}

// HasMember reports whether n is a member of the placement.
func (p Placement) HasMember(n cluster.NodeID) bool {
	if p.Nodes == nil {
		return n >= 0 && int(n) < p.Backends
	}
	for _, m := range p.Nodes {
		if m == n {
			return true
		}
	}
	return false
}

// NewPolicy constructs the declustering policy the placement describes.
func (p Placement) NewPolicy() (Policy, error) {
	if p.Policy == "rendezvous" {
		return NewRendezvousOver(p.Backends, p.Replication, p.Seed, p.Nodes), nil
	}
	if p.Nodes != nil {
		return nil, fmt.Errorf("ingest: policy %q does not support a member subset (only rendezvous placements are elastic)", p.Policy)
	}
	return PolicyByName(p.Policy)
}
