package ingest

import (
	"reflect"
	"testing"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/hashdb"
)

func TestWindowCodecRoundTrip(t *testing.T) {
	edges := []graph.Edge{{Src: 3, Dst: 9}, {Src: 9, Dst: 3}, {Src: 7, Dst: graph.MaxVertexID}}
	fe, seq, got, err := decodeWindow(encodeWindow(5, 12345, edges))
	if err != nil {
		t.Fatal(err)
	}
	if fe != 5 || seq != 12345 {
		t.Fatalf("header round trip = (%d, %d), want (5, 12345)", fe, seq)
	}
	if !reflect.DeepEqual(got, edges) {
		t.Fatalf("edges round trip = %v", got)
	}
	if _, _, _, err := decodeWindow([]byte{1, 2, 3}); err == nil {
		t.Fatal("short window accepted")
	}
	if _, _, _, err := decodeWindow(make([]byte, windowHeaderBytes+5)); err == nil {
		t.Fatal("misaligned window body accepted")
	}
}

func TestWindowKeyDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for fe := uint32(0); fe < 8; fe++ {
		for seq := uint64(1); seq <= 100; seq++ {
			k := windowKey(fe, seq)
			if seen[k] {
				t.Fatalf("windowKey(%d, %d) collides", fe, seq)
			}
			seen[k] = true
		}
	}
}

// TestStoreFilterDedupsReshippedWindows is the store-side half of the
// ingest retry protocol: applying the same window twice (a front-end
// re-ship after an ambiguous send failure, or a fabric duplicate) must
// not double-count EdgesStored or duplicate adjacency.
func TestStoreFilterDedupsReshippedWindows(t *testing.T) {
	db := hashdb.New()
	defer db.Close()
	stats := &Stats{}
	sf := &storeFilter{db: db, stats: stats}
	if err := sf.Init(nil); err != nil {
		t.Fatal(err)
	}

	w1 := encodeWindow(0, 1, []graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}})
	w2 := encodeWindow(0, 2, []graph.Edge{{Src: 2, Dst: 1}})
	// Same seq from a DIFFERENT front-end is a distinct window, not a dup.
	w3 := encodeWindow(1, 1, []graph.Edge{{Src: 3, Dst: 1}})

	for _, w := range [][]byte{w1, w1, w2, w3, w1, w2} {
		if err := sf.apply(w); err != nil {
			t.Fatal(err)
		}
	}

	if got := stats.EdgesStored.Load(); got != 4 {
		t.Errorf("EdgesStored = %d, want 4 (re-shipped windows double-counted)", got)
	}
	if got := stats.DupBlocks.Load(); got != 3 {
		t.Errorf("DupBlocks = %d, want 3", got)
	}
	deg, err := graphdb.Degree(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if deg != 2 {
		t.Errorf("Degree(1) = %d, want 2 (duplicate adjacency stored)", deg)
	}
	adj := graph.NewAdjList(8)
	if err := db.AdjacencyUsingMetadata(1, adj, 0, graphdb.MetaIgnore); err != nil {
		t.Fatal(err)
	}
	if got := adj.IDs(); len(got) != 2 {
		t.Errorf("Adjacency(1) = %v, want exactly {2, 3}", got)
	}
}
