package ingest

import (
	"reflect"
	"testing"

	"mssg/internal/cluster"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
)

func allNodes(p int) []cluster.NodeID {
	nodes := make([]cluster.NodeID, p)
	for i := range nodes {
		nodes[i] = cluster.NodeID(i)
	}
	return nodes
}

// TestRendezvousDeterministic: placement is a pure function of the
// vertex — two independently constructed instances (an ingest filter on
// one machine, a query router on another) must agree on every replica
// list, and Route/OwnerOf/Replicas must agree with each other.
func TestRendezvousDeterministic(t *testing.T) {
	const p, k = 8, 3
	a := NewRendezvous(p, k, 0)
	b := NewRendezvous(p, k, 0)
	for v := graph.VertexID(0); v < 500; v++ {
		ra, rb := a.Replicas(v), b.Replicas(v)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("v=%d: instances disagree: %v vs %v", v, ra, rb)
		}
		if len(ra) != k {
			t.Fatalf("v=%d: %d replicas, want %d", v, len(ra), k)
		}
		seen := map[cluster.NodeID]bool{}
		for _, n := range ra {
			if n < 0 || int(n) >= p || seen[n] {
				t.Fatalf("v=%d: bad replica list %v", v, ra)
			}
			seen[n] = true
		}
		if got := a.Route(graph.Edge{Src: v, Dst: v + 1}, p); cluster.NodeID(got) != ra[0] {
			t.Fatalf("v=%d: Route=%d but primary replica=%d", v, got, ra[0])
		}
		if got := a.OwnerOf(v); got != ra[0] {
			t.Fatalf("v=%d: OwnerOf=%d but primary replica=%d", v, got, ra[0])
		}
	}
	// A different seed must produce a different placement.
	c := NewRendezvous(p, k, 12345)
	diff := 0
	for v := graph.VertexID(0); v < 500; v++ {
		if !reflect.DeepEqual(a.Replicas(v), c.Replicas(v)) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed change did not move any placement")
	}
}

// TestRendezvousBalance: HRW scores are uniform hashes, so primary (and
// every replica rank) load should be near-even across nodes.
func TestRendezvousBalance(t *testing.T) {
	const p, k, vertices = 8, 2, 20000
	r := NewRendezvous(p, k, 0)
	primaries := make([]int, p)
	replicas := make([]int, p)
	for v := 0; v < vertices; v++ {
		reps := r.Replicas(graph.VertexID(v))
		primaries[reps[0]]++
		for _, n := range reps {
			replicas[n]++
		}
	}
	checkEven := func(name string, counts []int, total int) {
		mean := float64(total) / float64(p)
		for n, c := range counts {
			if f := float64(c) / mean; f < 0.85 || f > 1.15 {
				t.Errorf("%s load on node %d is %d (%.2fx mean %f)", name, n, c, f, mean)
			}
		}
	}
	checkEven("primary", primaries, vertices)
	checkEven("replica", replicas, vertices*k)
}

// TestRendezvousMinimalMovement is the elasticity property: removing one
// node changes a vertex's replica set only when the removed node was in
// it, and then by exactly one substitute — so one leave moves at most
// the departed node's own shards (<= k per vertex, never a reshuffle).
func TestRendezvousMinimalMovement(t *testing.T) {
	const p, k = 8, 2
	r := NewRendezvous(p, k, 0)
	full := allNodes(p)
	for leave := 0; leave < p; leave++ {
		var survivors []cluster.NodeID
		for _, n := range full {
			if int(n) != leave {
				survivors = append(survivors, n)
			}
		}
		for v := graph.VertexID(0); v < 1000; v++ {
			before := r.RankedOver(v, full, k)
			after := r.RankedOver(v, survivors, k)
			had := false
			for _, n := range before {
				if int(n) == leave {
					had = true
				}
			}
			if !had {
				if !reflect.DeepEqual(before, after) {
					t.Fatalf("leave=%d v=%d: uninvolved placement moved: %v -> %v", leave, v, before, after)
				}
				continue
			}
			// The survivors of the old set must all still be placed;
			// exactly one new member backfills.
			afterSet := map[cluster.NodeID]bool{}
			for _, n := range after {
				afterSet[n] = true
			}
			kept, moved := 0, 0
			for _, n := range before {
				if int(n) == leave {
					continue
				}
				if afterSet[n] {
					kept++
				} else {
					moved++
				}
			}
			if moved != 0 || kept != k-1 {
				t.Fatalf("leave=%d v=%d: %v -> %v moved %d surviving replicas", leave, v, before, after, moved)
			}
		}
	}
}

// TestRendezvousJoinSymmetric: adding a node back is the mirror image —
// only shards whose new top-k includes the joiner move to it.
func TestRendezvousJoinSymmetric(t *testing.T) {
	const p, k = 7, 2
	r := NewRendezvous(p+1, k, 0)
	small := allNodes(p)
	big := allNodes(p + 1)
	gained := 0
	for v := graph.VertexID(0); v < 1000; v++ {
		before := r.RankedOver(v, small, k)
		after := r.RankedOver(v, big, k)
		joined := false
		for _, n := range after {
			if int(n) == p {
				joined = true
			}
		}
		if joined {
			gained++
			continue
		}
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("v=%d: join moved an unrelated placement: %v -> %v", v, before, after)
		}
	}
	// The joiner should pick up roughly k/(p+1) of all shards.
	want := 1000 * k / (p + 1)
	if gained < want/2 || gained > want*2 {
		t.Fatalf("joiner absorbed %d of 1000 shards, want around %d", gained, want)
	}
}

// TestPlacementCodecRoundTrip: encode/decode is lossless and rejects
// corruption.
func TestPlacementCodecRoundTrip(t *testing.T) {
	p := Placement{Policy: "rendezvous", Backends: 12, Replication: 3, Seed: 9876543210}
	b := EncodePlacement(p)
	got, err := DecodePlacement(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !placementEqual(got, p) {
		t.Fatalf("round trip %+v -> %+v", p, got)
	}
	for i := range b {
		c := append([]byte(nil), b...)
		c[i] ^= 0x41
		if _, err := DecodePlacement(c); err == nil {
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
	if _, err := DecodePlacement(b[:len(b)-3]); err == nil {
		t.Fatal("truncated placement not detected")
	}
	if _, err := DecodePlacement(EncodePlacement(Placement{Policy: "rendezvous", Backends: 2, Replication: 3, Seed: 1})); err == nil {
		t.Fatal("replication > backends not rejected")
	}
}

// TestPlacementFileRoundTrip: the manifest persists and reloads; an
// absent manifest reads back as (ok=false, nil error).
func TestPlacementFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadPlacementFile(dir); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	p := Placement{Policy: "rendezvous", Backends: 4, Replication: 2, Seed: DefaultPlacementSeed}
	if err := WritePlacementFile(dir, p); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, ok, err := ReadPlacementFile(dir)
	if err != nil || !ok || !placementEqual(got, p) {
		t.Fatalf("read back: %+v ok=%v err=%v", got, ok, err)
	}
	pol, err := got.NewPolicy()
	if err != nil {
		t.Fatalf("NewPolicy: %v", err)
	}
	rp, ok := pol.(ReplicaPolicy)
	if !ok || rp.ReplicationFactor() != 2 {
		t.Fatalf("reconstructed policy %T is not a 2-way ReplicaPolicy", pol)
	}
}

// TestReplicatedIngest: with ReplicationFactor=2 every edge lands on
// exactly its two rendezvous replicas, each holding the full shard, and
// the stats account for the secondary copies.
func TestReplicatedIngest(t *testing.T) {
	const p, k = 4, 2
	rv := NewRendezvous(p, k, 0)
	cfg := Config{
		FrontEnds:         2,
		WindowEdges:       16,
		Policy:            func() Policy { return rv },
		ReplicationFactor: k,
	}
	edges := testEdges(600)
	dbs, stats := runIngestion(t, cfg, edges, p)

	var stored int64
	for _, d := range dbs {
		stored += d.Stats().EdgesStored
	}
	if want := int64(len(edges) * k); stored != want {
		t.Fatalf("stored %d records, want %d (%d edges x %d replicas)", stored, want, len(edges), k)
	}
	// Every vertex's full adjacency must be present on each of its
	// replicas and absent elsewhere.
	adjacency := map[graph.VertexID]map[graph.VertexID]int{}
	for _, e := range edges {
		if adjacency[e.Src] == nil {
			adjacency[e.Src] = map[graph.VertexID]int{}
		}
		adjacency[e.Src][e.Dst]++
	}
	out := graph.NewAdjList(16)
	for v, want := range adjacency {
		reps := map[cluster.NodeID]bool{}
		for _, n := range rv.Replicas(v) {
			reps[n] = true
		}
		for n, d := range dbs {
			out.Reset()
			if err := graphdb.Adjacency(d, v, out); err != nil {
				t.Fatalf("adjacency(%d) on node %d: %v", v, n, err)
			}
			if !reps[cluster.NodeID(n)] {
				if out.Len() != 0 {
					t.Fatalf("vertex %d leaked onto non-replica node %d", v, n)
				}
				continue
			}
			have := map[graph.VertexID]int{}
			for _, nb := range out.IDs() {
				have[nb]++
			}
			if !reflect.DeepEqual(have, want) {
				t.Fatalf("vertex %d on replica %d: adjacency %v, want %v", v, n, have, want)
			}
		}
	}
	if stats.ReplicaBlocks.Load() == 0 || stats.ReplicaBlocks.Load() != stats.Blocks.Load() {
		t.Fatalf("replica blocks %d, want equal to %d blocks (k=2)", stats.ReplicaBlocks.Load(), stats.Blocks.Load())
	}
	if stats.ReplicaWindows.Load() != stats.Blocks.Load() {
		t.Fatalf("replica windows stored %d, want %d", stats.ReplicaWindows.Load(), stats.Blocks.Load())
	}
}
