package ingest

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Back-ends that sit on a durable GraphDB (one implementing
// graphdb.Checkpointer) persist their window dedup-set with every
// database checkpoint. After a crash, the restarted back-end reloads the
// set and discards any window it had already stored — so a front-end can
// blindly re-ship its whole stream and ingestion stays exactly-once: a
// window is either in the last committed checkpoint (skipped as a
// duplicate) or it isn't (stored again along with the dedup entry, both
// committed atomically by the next Flush).

// ckptMagic versions the checkpoint blob layout.
const ckptMagic = "ICK1"

// encodeSeen serializes a window dedup-set: magic, count, sorted keys.
func encodeSeen(seen map[uint64]struct{}) []byte {
	keys := make([]uint64, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	b := make([]byte, len(ckptMagic)+8+8*len(keys))
	copy(b, ckptMagic)
	binary.LittleEndian.PutUint64(b[4:12], uint64(len(keys)))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(b[12+8*i:], k)
	}
	return b
}

// decodeSeen parses a checkpoint blob back into a dedup-set. A nil or
// empty blob (fresh database) yields an empty set. Must not panic on any
// input.
func decodeSeen(b []byte) (map[uint64]struct{}, error) {
	seen := make(map[uint64]struct{})
	if len(b) == 0 {
		return seen, nil
	}
	if len(b) < 12 || string(b[:4]) != ckptMagic {
		return nil, fmt.Errorf("ingest: malformed checkpoint blob (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint64(b[4:12])
	if (len(b)-12)%8 != 0 || n != uint64(len(b)-12)/8 {
		return nil, fmt.Errorf("ingest: checkpoint blob claims %d keys in %d bytes", n, len(b))
	}
	for i := 0; i < int(n); i++ {
		seen[binary.LittleEndian.Uint64(b[12+8*i:])] = struct{}{}
	}
	return seen, nil
}
