package ingest

import (
	"sort"
	"testing"

	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/grdb"
	"mssg/internal/storage/crashfs"
	"mssg/internal/storage/vfs"
)

// TestIngestCrashResumeSweep is the end-to-end exactly-once check: a
// durable back-end crashes at every Nth filesystem operation mid-ingest,
// restarts on the real filesystem, and has the entire window stream
// re-shipped to it. The final graph must equal the full oracle — nothing
// lost, nothing stored twice — at every crash point.
func TestIngestCrashResumeSweep(t *testing.T) {
	const numWindows = 8
	window := func(seq int) []byte {
		v := graph.VertexID(seq)
		return encodeWindow(0, uint64(seq), []graph.Edge{
			{Src: v, Dst: graph.VertexID(100 + seq)},
			{Src: v, Dst: graph.VertexID(200 + seq)},
		})
	}
	opts := func(dir string, fsys vfs.FS) graphdb.Options {
		return graphdb.Options{
			Dir:          dir,
			MaxFileBytes: 4096,
			Levels: []graphdb.LevelSpec{
				{SubBlockCap: 2, BlockBytes: 256},
				{SubBlockCap: 4, BlockBytes: 256},
				{SubBlockCap: 8, BlockBytes: 256},
			},
			Durability: graphdb.DurabilityFull,
			FS:         fsys,
		}
	}
	runUntilCrash := func(db graphdb.Graph) {
		sf := &storeFilter{cfg: Config{Durable: true, CheckpointWindows: 2}, db: db, stats: &Stats{}}
		if err := sf.Init(nil); err != nil {
			return
		}
		for seq := 1; seq <= numWindows; seq++ {
			if err := sf.apply(window(seq)); err != nil {
				return
			}
		}
		sf.Finalize(nil)
	}

	// Dry run to size the sweep.
	cfs := crashfs.New(vfs.OS)
	db, err := grdb.Open(opts(t.TempDir(), cfs))
	if err != nil {
		t.Fatal(err)
	}
	runUntilCrash(db)
	db.Close()
	total := cfs.Ops()
	stride := total/16 + 1
	if testing.Short() {
		stride = total/4 + 1
	}
	t.Logf("sweeping %d ops, stride %d", total, stride)

	for k := int64(1); k <= total; k += stride {
		dir := t.TempDir()
		cfs := crashfs.New(vfs.OS)
		cfs.SetCrashPoint(k, crashfs.Policy(int(k)%4))
		if db, err := grdb.Open(opts(dir, cfs)); err == nil {
			runUntilCrash(db)
		}
		cfs.Shutdown()

		// Restart: reopen on the real filesystem and re-ship everything.
		db2, err := grdb.Open(opts(dir, nil))
		if err != nil {
			t.Fatalf("crash@%d: reopen: %v", k, err)
		}
		stats := &Stats{}
		sf := &storeFilter{cfg: Config{Durable: true, CheckpointWindows: 2}, db: db2, stats: stats}
		if err := sf.Init(nil); err != nil {
			t.Fatalf("crash@%d: init: %v", k, err)
		}
		for seq := 1; seq <= numWindows; seq++ {
			if err := sf.apply(window(seq)); err != nil {
				t.Fatalf("crash@%d: re-ship window %d: %v", k, seq, err)
			}
		}
		if err := sf.Finalize(nil); err != nil {
			t.Fatalf("crash@%d: finalize: %v", k, err)
		}

		for seq := 1; seq <= numWindows; seq++ {
			out := graph.NewAdjList(8)
			if err := graphdb.Adjacency(db2, graph.VertexID(seq), out); err != nil {
				t.Fatalf("crash@%d: adjacency(%d): %v", k, seq, err)
			}
			got := append([]graph.VertexID(nil), out.IDs()...)
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			want := []graph.VertexID{graph.VertexID(100 + seq), graph.VertexID(200 + seq)}
			if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("crash@%d: vertex %d adjacency = %v, want %v (lost or duplicated edges)", k, seq, got, want)
			}
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("crash@%d: close: %v", k, err)
		}
	}
}
