package ingest

import (
	"io"
	"reflect"
	"sort"
	"testing"

	"mssg/internal/cluster"
	"mssg/internal/datacutter"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/hashdb"
)

func TestVertexModPolicy(t *testing.T) {
	p := VertexMod{}
	if !p.GloballyMapped() {
		t.Fatal("VertexMod must be globally mapped")
	}
	for v := graph.VertexID(0); v < 50; v++ {
		got := p.Route(graph.Edge{Src: v, Dst: 0}, 8)
		if got != int(v%8) {
			t.Fatalf("Route(%d) = %d", v, got)
		}
	}
}

func TestEdgeRoundRobinPolicy(t *testing.T) {
	p := &EdgeRoundRobin{}
	if p.GloballyMapped() {
		t.Fatal("EdgeRoundRobin must not claim a global mapping")
	}
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, p.Route(graph.Edge{Src: 99, Dst: 1}, 3))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round robin sequence = %v", got)
	}
}

func TestPolicyByName(t *testing.T) {
	for name, mapped := range map[string]bool{
		"vertex-mod": true, "vertex": true, "": true,
		"edge-round-robin": false, "edge": false,
	} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.GloballyMapped() != mapped {
			t.Fatalf("PolicyByName(%q).GloballyMapped() = %v", name, p.GloballyMapped())
		}
	}
	if _, err := PolicyByName("nonsense"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestEdgeCodecRoundTrip(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 42, Dst: graph.MaxVertexID}}
	got, err := decodeEdges(encodeEdges(edges))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, edges) {
		t.Fatalf("round trip = %v", got)
	}
	if _, err := decodeEdges([]byte{1, 2, 3}); err == nil {
		t.Fatal("misaligned payload accepted")
	}
}

type sliceReader struct {
	edges []graph.Edge
	pos   int
}

func (r *sliceReader) ReadEdge() (graph.Edge, error) {
	if r.pos >= len(r.edges) {
		return graph.Edge{}, io.EOF
	}
	e := r.edges[r.pos]
	r.pos++
	return e, nil
}

// runIngestion drives the full filter graph over an in-process fabric.
func runIngestion(t *testing.T, cfg Config, edges []graph.Edge, backends int) ([]graphdb.Graph, *Stats) {
	t.Helper()
	cfg.Backends = backends
	fab := cluster.NewInProc(backends, 0)
	t.Cleanup(func() { fab.Close() })
	dbs := make([]graphdb.Graph, backends)
	for i := range dbs {
		dbs[i] = hashdb.New()
	}
	stats := &Stats{}
	g := datacutter.NewGraph()
	f := cfg.FrontEnds
	err := BuildGraph(g, cfg, stats,
		func(copy int) (graph.EdgeReader, error) {
			lo := len(edges) * copy / f
			hi := len(edges) * (copy + 1) / f
			return &sliceReader{edges: edges[lo:hi]}, nil
		},
		func(copy int) graphdb.Graph { return dbs[copy] },
		datacutter.PlaceCopies(f),
		datacutter.PlaceOnePerNode(),
	)
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	if err := datacutter.NewRuntime(fab).Run(g); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return dbs, stats
}

func testEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i % 40), Dst: graph.VertexID((i + 7) % 40)}
	}
	return edges
}

func TestVertexDeclusteringPlacesAdjacencyOnOwner(t *testing.T) {
	edges := testEdges(200)
	dbs, stats := runIngestion(t, Config{FrontEnds: 2, WindowEdges: 16}, edges, 4)
	if stats.EdgesIn.Load() != 200 || stats.EdgesStored.Load() != 200 {
		t.Fatalf("stats: in=%d stored=%d", stats.EdgesIn.Load(), stats.EdgesStored.Load())
	}
	// Every vertex's adjacency must live only on node v % 4.
	out := graph.NewAdjList(16)
	for v := graph.VertexID(0); v < 40; v++ {
		for node := 0; node < 4; node++ {
			out.Reset()
			if err := graphdb.Adjacency(dbs[node], v, out); err != nil {
				t.Fatal(err)
			}
			if node == int(v)%4 {
				if out.Len() == 0 {
					t.Fatalf("owner node %d has no adjacency for %d", node, v)
				}
			} else if out.Len() != 0 {
				t.Fatalf("non-owner node %d holds adjacency for %d", node, v)
			}
		}
	}
}

func TestAddReverseStoresBothOrientations(t *testing.T) {
	edges := []graph.Edge{{Src: 1, Dst: 2}}
	dbs, stats := runIngestion(t, Config{FrontEnds: 1, AddReverse: true}, edges, 2)
	if stats.EdgesStored.Load() != 2 {
		t.Fatalf("stored %d records, want 2", stats.EdgesStored.Load())
	}
	out := graph.NewAdjList(4)
	if err := graphdb.Adjacency(dbs[1], 1, out); err != nil { // 1 % 2 = 1
		t.Fatal(err)
	}
	if out.Len() != 1 || out.At(0) != 2 {
		t.Fatalf("forward adjacency = %v", out.IDs())
	}
	out.Reset()
	if err := graphdb.Adjacency(dbs[0], 2, out); err != nil { // 2 % 2 = 0
		t.Fatal(err)
	}
	if out.Len() != 1 || out.At(0) != 1 {
		t.Fatalf("reverse adjacency = %v", out.IDs())
	}
}

func TestSelfLoopNotDoubledByAddReverse(t *testing.T) {
	edges := []graph.Edge{{Src: 3, Dst: 3}}
	_, stats := runIngestion(t, Config{FrontEnds: 1, AddReverse: true}, edges, 2)
	if stats.EdgesStored.Load() != 1 {
		t.Fatalf("self loop stored %d times, want 1", stats.EdgesStored.Load())
	}
}

func TestWindowingShipsPartialWindows(t *testing.T) {
	// 10 edges, window 64: everything must still arrive (flush on EOF).
	edges := testEdges(10)
	dbs, stats := runIngestion(t, Config{FrontEnds: 1, WindowEdges: 64}, edges, 2)
	if stats.EdgesStored.Load() != 10 {
		t.Fatalf("stored %d, want 10", stats.EdgesStored.Load())
	}
	var total int64
	for _, db := range dbs {
		total += db.Stats().EdgesStored
	}
	if total != 10 {
		t.Fatalf("backends hold %d records", total)
	}
	if stats.Blocks.Load() == 0 {
		t.Fatal("no blocks shipped")
	}
}

func TestSmallWindowsManyBlocks(t *testing.T) {
	edges := testEdges(100)
	_, statsBig := runIngestion(t, Config{FrontEnds: 1, WindowEdges: 1000}, edges, 2)
	_, statsSmall := runIngestion(t, Config{FrontEnds: 1, WindowEdges: 4}, edges, 2)
	if statsSmall.Blocks.Load() <= statsBig.Blocks.Load() {
		t.Fatalf("window 4 shipped %d blocks, window 1000 shipped %d",
			statsSmall.Blocks.Load(), statsBig.Blocks.Load())
	}
}

func TestEdgePolicyDistributesAcrossBackends(t *testing.T) {
	edges := testEdges(120)
	dbs, _ := runIngestion(t, Config{
		FrontEnds: 1,
		Policy:    func() Policy { return &EdgeRoundRobin{} },
	}, edges, 3)
	var counts []int64
	for _, db := range dbs {
		counts = append(counts, db.Stats().EdgesStored)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	if counts[0] != 40 || counts[2] != 40 {
		t.Fatalf("edge round-robin distribution uneven: %v", counts)
	}
}

func TestEdgeRoundRobinSeedCopy(t *testing.T) {
	// Copy i must open its cycle on back-end i, not 0.
	for copy := 0; copy < 3; copy++ {
		p := &EdgeRoundRobin{}
		p.SeedCopy(copy)
		if got := p.Route(graph.Edge{Src: 1, Dst: 2}, 3); got != copy {
			t.Fatalf("copy %d first route = %d", copy, got)
		}
	}
}

func TestEdgePolicyBalancedAcrossFrontEnds(t *testing.T) {
	// 3 front-ends × 4 edges each over 3 back-ends: every copy's cycle
	// has a one-edge remainder. Unseeded, all three remainders land on
	// back-end 0 (6/3/3); seeded by copy index they interleave (4/4/4).
	edges := testEdges(12)
	dbs, _ := runIngestion(t, Config{
		FrontEnds: 3,
		Policy:    func() Policy { return &EdgeRoundRobin{} },
	}, edges, 3)
	for i, db := range dbs {
		if n := db.Stats().EdgesStored; n != 4 {
			counts := make([]int64, len(dbs))
			for j, d := range dbs {
				counts[j] = d.Stats().EdgesStored
			}
			t.Fatalf("back-end %d stored %d edges, want 4 (distribution %v)", i, n, counts)
		}
	}
}

func TestBuildGraphValidation(t *testing.T) {
	g := datacutter.NewGraph()
	err := BuildGraph(g, Config{FrontEnds: 0, Backends: 2}, &Stats{},
		nil, nil, datacutter.PlaceCopies(1), datacutter.PlaceOnePerNode())
	if err == nil {
		t.Fatal("zero front-ends accepted")
	}
}

func TestInvalidEdgeFailsIngestion(t *testing.T) {
	fab := cluster.NewInProc(2, 0)
	defer fab.Close()
	dbs := []graphdb.Graph{hashdb.New(), hashdb.New()}
	stats := &Stats{}
	g := datacutter.NewGraph()
	cfg := Config{FrontEnds: 1, Backends: 2}
	err := BuildGraph(g, cfg, stats,
		func(copy int) (graph.EdgeReader, error) {
			return &sliceReader{edges: []graph.Edge{{Src: -5, Dst: 1}}}, nil
		},
		func(copy int) graphdb.Graph { return dbs[copy] },
		datacutter.PlaceCopies(1),
		datacutter.PlaceOnePerNode(),
	)
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	if err := datacutter.NewRuntime(fab).Run(g); err == nil {
		t.Fatal("invalid edge ingested without error")
	}
}
