package ingest

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"mssg/internal/cluster"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	"mssg/internal/graphdb/grdb"
	"mssg/internal/graphdb/hashdb"
)

// testEdges builds a deterministic pseudo-random edge set.
func migTestEdges(n, vertices int, seed uint64) []graph.Edge {
	s := seed
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		src := graph.VertexID(next() % uint64(vertices))
		dst := graph.VertexID(next() % uint64(vertices))
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
	}
	return edges
}

// seedReplicated stores every edge on all replicas of its source under
// rp, the way ingest's replicated store filter would have.
func seedReplicated(t *testing.T, dbs []graphdb.Graph, rp ReplicaPolicy, edges []graph.Edge) {
	t.Helper()
	for _, e := range edges {
		for _, n := range rp.Replicas(e.Src) {
			if err := dbs[n].StoreEdges([]graph.Edge{e}); err != nil {
				t.Fatalf("seed node %d: %v", n, err)
			}
		}
	}
}

// distinctAdj returns v's sorted distinct neighbours on db.
func distinctAdj(t *testing.T, db graphdb.Graph, v graph.VertexID) []graph.VertexID {
	t.Helper()
	adj := graph.NewAdjList(64)
	if err := graphdb.Adjacency(db, v, adj); err != nil {
		t.Fatalf("Adjacency(%d): %v", v, err)
	}
	seen := make(map[graph.VertexID]bool)
	var out []graph.VertexID
	for _, u := range adj.IDs() {
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkPlacementServed asserts every vertex's full distinct adjacency is
// present on every replica the placement routes it to.
func checkPlacementServed(t *testing.T, dbs []graphdb.Graph, p Placement, reference map[graph.VertexID][]graph.VertexID) {
	t.Helper()
	rp, err := replicaPolicyFor(p)
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range reference {
		for _, n := range rp.Replicas(v) {
			got := distinctAdj(t, dbs[n], v)
			if len(got) != len(want) {
				t.Fatalf("epoch %d: vertex %d on replica %d has %d distinct neighbours, want %d",
					p.Epoch, v, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("epoch %d: vertex %d on replica %d: adjacency diverges at %d (%d vs %d)",
						p.Epoch, v, n, i, got[i], want[i])
				}
			}
		}
	}
}

func referenceAdj(edges []graph.Edge) map[graph.VertexID][]graph.VertexID {
	seen := make(map[graph.VertexID]map[graph.VertexID]bool)
	for _, e := range edges {
		if seen[e.Src] == nil {
			seen[e.Src] = make(map[graph.VertexID]bool)
		}
		seen[e.Src][e.Dst] = true
	}
	ref := make(map[graph.VertexID][]graph.VertexID, len(seen))
	for v, us := range seen {
		for u := range us {
			ref[v] = append(ref[v], u)
		}
		sort.Slice(ref[v], func(i, j int) bool { return ref[v][i] < ref[v][j] })
	}
	return ref
}

func hashCluster(n int) []graphdb.Graph {
	dbs := make([]graphdb.Graph, n)
	for i := range dbs {
		dbs[i] = hashdb.New()
	}
	return dbs
}

// TestMigrateJoin: a node joins, the minimal shard set moves, the epoch
// commits, and the new placement serves every vertex from every replica.
func TestMigrateJoin(t *testing.T) {
	base := Placement{Policy: "rendezvous", Backends: 3, Replication: 2, Seed: 42}
	holder, err := NewPlacementHolder("", Manifest{Committed: base})
	if err != nil {
		t.Fatal(err)
	}
	oldRP, _ := replicaPolicyFor(base)
	edges := migTestEdges(2000, 300, 7)
	dbs := hashCluster(4)
	seedReplicated(t, dbs, oldRP, edges)

	f := cluster.NewInProc(4, 0)
	defer f.Close()
	target, err := holder.JoinTarget(3)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Migrate(f, dbs, holder, target, MigrationConfig{WindowEdges: 64})
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if holder.Epoch() != 1 || holder.Manifest().Pending != nil {
		t.Fatalf("join did not commit: %+v", holder.Manifest())
	}
	if stats.MovedVertices == 0 || stats.MovedEdges == 0 || stats.Windows == 0 {
		t.Fatalf("join moved nothing: %+v", stats)
	}
	checkPlacementServed(t, dbs, holder.Placement(), referenceAdj(edges))

	// Minimality: far fewer vertices moved than exist (the topology delta
	// touched 1 of 4 member slots).
	ref := referenceAdj(edges)
	if stats.MovedVertices >= int64(2*len(ref)) {
		t.Fatalf("join moved %d vertex copies for %d vertices — not minimal", stats.MovedVertices, len(ref))
	}
}

// TestMigrateDrain: a planned drain re-homes the departing node's shards
// and the committed placement routes around it.
func TestMigrateDrain(t *testing.T) {
	base := Placement{Policy: "rendezvous", Backends: 4, Replication: 2, Seed: 9}
	holder, err := NewPlacementHolder("", Manifest{Committed: base})
	if err != nil {
		t.Fatal(err)
	}
	oldRP, _ := replicaPolicyFor(base)
	edges := migTestEdges(1500, 200, 11)
	dbs := hashCluster(4)
	seedReplicated(t, dbs, oldRP, edges)

	f := cluster.NewInProc(4, 0)
	defer f.Close()
	target, err := holder.DrainTarget(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Migrate(f, dbs, holder, target, MigrationConfig{WindowEdges: 64}); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	got := holder.Placement()
	if got.Epoch != 1 || got.HasMember(2) {
		t.Fatalf("drain committed %+v", got)
	}
	checkPlacementServed(t, dbs, got, referenceAdj(edges))
	rp, _ := replicaPolicyFor(got)
	for v := range referenceAdj(edges) {
		for _, n := range rp.Replicas(v) {
			if n == 2 {
				t.Fatalf("vertex %d still routed to drained node 2", v)
			}
		}
	}
}

// TestMigrateCatchup: edges ingested between the copy and catch-up
// boundaries (the live-ingest window) reach the destinations too.
func TestMigrateCatchup(t *testing.T) {
	base := Placement{Policy: "rendezvous", Backends: 2, Replication: 1, Seed: 3}
	holder, err := NewPlacementHolder("", Manifest{Committed: base})
	if err != nil {
		t.Fatal(err)
	}
	oldRP, _ := replicaPolicyFor(base)
	edges := migTestEdges(800, 100, 5)
	dbs := hashCluster(3)
	seedReplicated(t, dbs, oldRP, edges)

	f := cluster.NewInProc(3, 0)
	defer f.Close()
	target, err := holder.JoinTarget(2)
	if err != nil {
		t.Fatal(err)
	}

	// Edges that arrive mid-copy: appended to the source replicas exactly
	// as live ingest under the old placement would do.
	late := []graph.Edge{}
	for v := graph.VertexID(0); v < 100; v++ {
		late = append(late, graph.Edge{Src: v, Dst: graph.VertexID(1000 + v)})
	}
	injected := false
	stats, err := Migrate(f, dbs, holder, target, MigrationConfig{
		WindowEdges: 32,
		Hook: func(pass cluster.MigratePass) error {
			if pass == cluster.PassCatchup && !injected {
				injected = true
				for _, e := range late {
					for _, n := range oldRP.Replicas(e.Src) {
						if err := dbs[n].StoreEdges([]graph.Edge{e}); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if !injected {
		t.Fatal("catch-up hook never ran")
	}
	if stats.CatchupEdges == 0 {
		t.Fatalf("no catch-up edges shipped: %+v", stats)
	}
	checkPlacementServed(t, dbs, holder.Placement(), referenceAdj(append(edges, late...)))
}

// TestMigrateVerifyFailure: a destination whose shard diverges from the
// source fails verify, the epoch does not flip, and the pending record
// remains for resume-or-abort.
func TestMigrateVerifyFailure(t *testing.T) {
	base := Placement{Policy: "rendezvous", Backends: 2, Replication: 1, Seed: 1}
	holder, err := NewPlacementHolder("", Manifest{Committed: base})
	if err != nil {
		t.Fatal(err)
	}
	oldRP, _ := replicaPolicyFor(base)
	edges := migTestEdges(600, 80, 13)
	dbs := hashCluster(3)
	seedReplicated(t, dbs, oldRP, edges)

	target, err := holder.JoinTarget(2)
	if err != nil {
		t.Fatal(err)
	}
	newRP, err := replicaPolicyFor(target)
	if err != nil {
		t.Fatal(err)
	}
	// A vertex that moves to the joining node; corrupting its destination
	// copy between catch-up and verify must be caught.
	var victim graph.VertexID = ^graph.VertexID(0)
	for v := range referenceAdj(edges) {
		for _, n := range newRP.Replicas(v) {
			if n == 2 {
				victim = v
			}
		}
	}
	if victim == ^graph.VertexID(0) {
		t.Fatal("no vertex moves to the joining node; adjust seeds")
	}

	f := cluster.NewInProc(3, 0)
	defer f.Close()
	_, err = Migrate(f, dbs, holder, target, MigrationConfig{
		WindowEdges: 32,
		Hook: func(pass cluster.MigratePass) error {
			if pass == cluster.PassVerify {
				// Divergence: an edge the source never shipped appears in
				// the destination's copy of the moved shard.
				return dbs[2].StoreEdges([]graph.Edge{{Src: victim, Dst: 999999}})
			}
			return nil
		},
	})
	if !errors.Is(err, cluster.ErrMigrationVerify) {
		t.Fatalf("err = %v, want ErrMigrationVerify", err)
	}
	if holder.Epoch() != 0 {
		t.Fatalf("failed verify flipped the epoch to %d", holder.Epoch())
	}
	if holder.Manifest().Pending == nil {
		t.Fatal("failed verify dropped the pending record")
	}
	if err := holder.AbortMigration(); err != nil {
		t.Fatal(err)
	}
	if holder.Manifest().Pending != nil || holder.Epoch() != 0 {
		t.Fatalf("abort left %+v", holder.Manifest())
	}
}

// TestDurableMigrationResumes: a migration aborted mid-flight over
// durable back-ends resumes from the checkpointed dedup-set — re-shipped
// windows are recognized as duplicates and the data is not double-stored.
func TestDurableMigrationResumes(t *testing.T) {
	openNode := func(dir string) graphdb.Graph {
		db, err := grdb.Open(graphdb.Options{
			Dir:        dir,
			Levels:     []graphdb.LevelSpec{{SubBlockCap: 4, BlockBytes: 512}, {SubBlockCap: 8, BlockBytes: 512}, {SubBlockCap: 16, BlockBytes: 512}},
			Durability: graphdb.DurabilityFull,
		})
		if err != nil {
			t.Fatalf("grdb.Open(%s): %v", dir, err)
		}
		return db
	}
	dirs := make([]string, 3)
	dbs := make([]graphdb.Graph, 3)
	for i := range dbs {
		dirs[i] = t.TempDir()
		dbs[i] = openNode(dirs[i])
	}
	closeAll := func() {
		for _, db := range dbs {
			db.Close()
		}
	}
	defer func() { closeAll() }()

	manifestDir := t.TempDir()
	base := Placement{Policy: "rendezvous", Backends: 2, Replication: 1, Seed: 21}
	holder, err := NewPlacementHolder(manifestDir, Manifest{Committed: base})
	if err != nil {
		t.Fatal(err)
	}
	oldRP, _ := replicaPolicyFor(base)
	edges := migTestEdges(500, 60, 17)
	seedReplicated(t, dbs, oldRP, edges)

	target, err := holder.JoinTarget(2)
	if err != nil {
		t.Fatal(err)
	}

	// Attempt 1: the coordinator dies at the verify boundary — after copy
	// and catch-up data (and the destination's dedup checkpoint) are
	// durable, before any verdict.
	f := cluster.NewInProc(3, 0)
	_, err = Migrate(f, dbs, holder, target, MigrationConfig{
		WindowEdges: 16,
		Durable:     true,
		Hook: func(pass cluster.MigratePass) error {
			if pass == cluster.PassVerify {
				return fmt.Errorf("chaos: coordinator killed at the verify boundary")
			}
			return nil
		},
	})
	if !errors.Is(err, cluster.ErrMigrationAborted) {
		t.Fatalf("attempt 1 err = %v, want ErrMigrationAborted", err)
	}
	f.Close()

	// Crash-restart every node and the coordinator process: reopen the
	// databases and reload the manifest from disk.
	closeAll()
	for i := range dbs {
		dbs[i] = openNode(dirs[i])
	}
	holder2, ok, err := OpenPlacementHolder(manifestDir)
	if err != nil || !ok {
		t.Fatalf("reopen holder: ok=%v err=%v", ok, err)
	}
	if holder2.Epoch() != 0 || holder2.Manifest().Pending == nil {
		t.Fatalf("restart lost the pending migration: %+v", holder2.Manifest())
	}

	f2 := cluster.NewInProc(3, 0)
	defer f2.Close()
	stats, resumed, err := ResumeMigration(f2, dbs, holder2, MigrationConfig{WindowEdges: 16, Durable: true})
	if err != nil {
		t.Fatalf("ResumeMigration: %v", err)
	}
	if !resumed {
		t.Fatal("ResumeMigration found nothing pending")
	}
	if stats.DupWindows == 0 {
		t.Fatalf("resume re-applied every window (DupWindows = 0): %+v", stats)
	}
	if holder2.Epoch() != 1 {
		t.Fatalf("resume did not commit: epoch %d", holder2.Epoch())
	}
	checkPlacementServed(t, dbs, holder2.Placement(), referenceAdj(edges))

	// And nothing pends any more: a second resume is a no-op.
	if _, resumed, err := ResumeMigration(f2, dbs, holder2, MigrationConfig{Durable: true}); err != nil || resumed {
		t.Fatalf("post-commit resume: resumed=%v err=%v", resumed, err)
	}
}
