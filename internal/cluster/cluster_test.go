package cluster

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fabrics returns both transport implementations for table-driven tests.
func fabrics(t *testing.T, size int) map[string]Fabric {
	t.Helper()
	out := map[string]Fabric{
		"inproc": NewInProc(size, 64),
	}
	tcp, err := NewTCP(size, 64)
	if err != nil {
		t.Fatalf("NewTCP: %v", err)
	}
	out["tcp"] = tcp
	for _, f := range out {
		f := f
		t.Cleanup(func() { f.Close() })
	}
	return out
}

func TestPointToPoint(t *testing.T) {
	for name, f := range fabrics(t, 3) {
		t.Run(name, func(t *testing.T) {
			if err := f.Endpoint(0).Send(2, 7, []byte("hello")); err != nil {
				t.Fatalf("Send: %v", err)
			}
			msg, err := f.Endpoint(2).Recv(7)
			if err != nil {
				t.Fatalf("Recv: %v", err)
			}
			if msg.From != 0 || string(msg.Payload) != "hello" || msg.Channel != 7 {
				t.Fatalf("got %+v", msg)
			}
		})
	}
}

func TestSelfSend(t *testing.T) {
	for name, f := range fabrics(t, 2) {
		t.Run(name, func(t *testing.T) {
			ep := f.Endpoint(1)
			if err := ep.Send(1, 3, []byte("self")); err != nil {
				t.Fatalf("Send to self: %v", err)
			}
			msg, err := ep.Recv(3)
			if err != nil || string(msg.Payload) != "self" {
				t.Fatalf("Recv = %v, %v", msg, err)
			}
		})
	}
}

func TestChannelsAreIndependent(t *testing.T) {
	for name, f := range fabrics(t, 2) {
		t.Run(name, func(t *testing.T) {
			ep0, ep1 := f.Endpoint(0), f.Endpoint(1)
			if err := ep0.Send(1, 10, []byte("a")); err != nil {
				t.Fatal(err)
			}
			if err := ep0.Send(1, 20, []byte("b")); err != nil {
				t.Fatal(err)
			}
			// Receive in the opposite order of sending.
			m20, err := ep1.Recv(20)
			if err != nil || string(m20.Payload) != "b" {
				t.Fatalf("channel 20: %v %v", m20, err)
			}
			m10, err := ep1.Recv(10)
			if err != nil || string(m10.Payload) != "a" {
				t.Fatalf("channel 10: %v %v", m10, err)
			}
		})
	}
}

func TestFIFOPerSender(t *testing.T) {
	for name, f := range fabrics(t, 2) {
		t.Run(name, func(t *testing.T) {
			ep0, ep1 := f.Endpoint(0), f.Endpoint(1)
			const n = 50
			for i := 0; i < n; i++ {
				if err := ep0.Send(1, 5, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				msg, err := ep1.Recv(5)
				if err != nil {
					t.Fatal(err)
				}
				if msg.Payload[0] != byte(i) {
					t.Fatalf("message %d arrived out of order: %d", i, msg.Payload[0])
				}
			}
		})
	}
}

func TestBroadcast(t *testing.T) {
	for name, f := range fabrics(t, 4) {
		t.Run(name, func(t *testing.T) {
			if err := f.Endpoint(1).Broadcast(9, []byte("bc")); err != nil {
				t.Fatal(err)
			}
			for n := 0; n < 4; n++ {
				if n == 1 {
					continue
				}
				msg, err := f.Endpoint(NodeID(n)).Recv(9)
				if err != nil || string(msg.Payload) != "bc" || msg.From != 1 {
					t.Fatalf("node %d: %v %v", n, msg, err)
				}
			}
			// The sender must not receive its own broadcast.
			if _, ok, _ := f.Endpoint(1).TryRecv(9); ok {
				t.Fatal("sender received its own broadcast")
			}
		})
	}
}

func TestTryRecv(t *testing.T) {
	for name, f := range fabrics(t, 2) {
		t.Run(name, func(t *testing.T) {
			ep := f.Endpoint(0)
			if _, ok, err := ep.TryRecv(1); ok || err != nil {
				t.Fatalf("TryRecv on empty = ok:%v err:%v", ok, err)
			}
			if err := f.Endpoint(1).Send(0, 1, []byte("x")); err != nil {
				t.Fatal(err)
			}
			// TCP delivery is asynchronous; poll briefly.
			var got bool
			for i := 0; i < 1000 && !got; i++ {
				_, got, _ = ep.TryRecv(1)
			}
			if name == "inproc" && !got {
				t.Fatal("inproc TryRecv never saw the message")
			}
			if !got {
				// TCP: fall back to a blocking receive.
				if _, err := ep.Recv(1); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	for name, f := range fabrics(t, 2) {
		t.Run(name, func(t *testing.T) {
			done := make(chan error, 1)
			go func() {
				_, err := f.Endpoint(0).Recv(99)
				done <- err
			}()
			f.Close()
			if err := <-done; err != ErrClosed {
				t.Fatalf("Recv after close = %v, want ErrClosed", err)
			}
			if err := f.Endpoint(0).Send(1, 1, nil); err == nil {
				t.Fatal("Send after close succeeded")
			}
		})
	}
}

func TestSendValidation(t *testing.T) {
	f := NewInProc(2, 8)
	defer f.Close()
	if err := f.Endpoint(0).Send(5, 1, nil); err == nil {
		t.Fatal("Send to out-of-range node succeeded")
	}
	if err := f.Endpoint(0).Send(-1, 1, nil); err == nil {
		t.Fatal("Send to negative node succeeded")
	}
}

func TestOwnerMapping(t *testing.T) {
	for v := int64(0); v < 100; v++ {
		o := Owner(v, 8)
		if o != NodeID(v%8) {
			t.Fatalf("Owner(%d,8) = %d", v, o)
		}
	}
}

func TestCollectives(t *testing.T) {
	for name, f := range fabrics(t, 5) {
		t.Run(name, func(t *testing.T) {
			sums := make([]int64, 5)
			maxes := make([]int64, 5)
			mins := make([]int64, 5)
			bcast := make([]int64, 5)
			err := Run(f, func(ep Endpoint) error {
				c := NewCollective(ep, 100, 101)
				v := int64(ep.ID()) + 1 // 1..5
				s, err := c.AllReduceSum(v)
				if err != nil {
					return err
				}
				sums[ep.ID()] = s
				m, err := c.AllReduceMax(v)
				if err != nil {
					return err
				}
				maxes[ep.ID()] = m
				mn, err := c.AllReduceMin(v)
				if err != nil {
					return err
				}
				mins[ep.ID()] = mn
				b, err := c.BcastFromRoot(3, v*100)
				if err != nil {
					return err
				}
				bcast[ep.ID()] = b
				return c.Barrier()
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for n := 0; n < 5; n++ {
				if sums[n] != 15 {
					t.Errorf("node %d sum = %d, want 15", n, sums[n])
				}
				if maxes[n] != 5 {
					t.Errorf("node %d max = %d, want 5", n, maxes[n])
				}
				if mins[n] != 1 {
					t.Errorf("node %d min = %d, want 1", n, mins[n])
				}
				if bcast[n] != 400 {
					t.Errorf("node %d bcast = %d, want 400 (root 3)", n, bcast[n])
				}
			}
		})
	}
}

func TestCollectiveManyRounds(t *testing.T) {
	f := NewInProc(4, 16)
	defer f.Close()
	err := Run(f, func(ep Endpoint) error {
		c := NewCollective(ep, 50, 51)
		for round := int64(0); round < 200; round++ {
			got, err := c.AllReduceSum(round)
			if err != nil {
				return err
			}
			if got != round*4 {
				return fmt.Errorf("round %d: sum = %d, want %d", round, got, round*4)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesErrorsAndPanics(t *testing.T) {
	f := NewInProc(3, 8)
	defer f.Close()
	err := Run(f, func(ep Endpoint) error {
		switch ep.ID() {
		case 1:
			return fmt.Errorf("node 1 failed")
		case 2:
			panic("node 2 exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed failures")
	}
	msg := err.Error()
	for _, want := range []string{"node 1 failed", "panicked"} {
		if !contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestConcurrentSendersOneReceiver(t *testing.T) {
	for name, f := range fabrics(t, 4) {
		t.Run(name, func(t *testing.T) {
			const per = 100
			var wg sync.WaitGroup
			for s := 1; s < 4; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					ep := f.Endpoint(NodeID(s))
					for i := 0; i < per; i++ {
						if err := ep.Send(0, 2, []byte{byte(s)}); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(s)
			}
			counts := map[byte]int{}
			for i := 0; i < 3*per; i++ {
				msg, err := f.Endpoint(0).Recv(2)
				if err != nil {
					t.Fatalf("recv %d: %v", i, err)
				}
				counts[msg.Payload[0]]++
			}
			wg.Wait()
			want := map[byte]int{1: per, 2: per, 3: per}
			if !reflect.DeepEqual(counts, want) {
				t.Fatalf("counts = %v", counts)
			}
		})
	}
}

func TestMailboxBackpressure(t *testing.T) {
	// With a 1-message buffer, a second send must block until the
	// receiver drains the first.
	f := NewInProc(2, 1)
	defer f.Close()
	ep0, ep1 := f.Endpoint(0), f.Endpoint(1)
	if err := ep0.Send(1, 4, []byte{1}); err != nil {
		t.Fatal(err)
	}
	sent := make(chan error, 1)
	go func() {
		sent <- ep0.Send(1, 4, []byte{2})
	}()
	select {
	case err := <-sent:
		t.Fatalf("second send completed without a drain: %v", err)
	case <-time.After(20 * time.Millisecond):
		// Blocked, as intended.
	}
	if _, err := ep1.Recv(4); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-sent:
		if err != nil {
			t.Fatalf("second send failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("second send still blocked after drain")
	}
}

func TestCloseUnblocksBlockedSender(t *testing.T) {
	f := NewInProc(2, 1)
	ep0 := f.Endpoint(0)
	if err := ep0.Send(1, 4, []byte{1}); err != nil {
		t.Fatal(err)
	}
	sent := make(chan error, 1)
	go func() {
		sent <- ep0.Send(1, 4, []byte{2})
	}()
	time.Sleep(10 * time.Millisecond)
	f.Close()
	select {
	case err := <-sent:
		if err == nil {
			t.Fatal("blocked send succeeded after close")
		}
	case <-time.After(time.Second):
		t.Fatal("blocked sender not released by Close")
	}
}
