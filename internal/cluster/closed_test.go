package cluster

import (
	"errors"
	"sync"
	"testing"
)

// TestOpsAfterClose pins the post-Close contract on every fabric: once
// Close returns, every endpoint operation — including receives of
// messages that were still queued — fails with ErrClosed.
func TestOpsAfterClose(t *testing.T) {
	for name, f := range fabrics(t, 3) {
		t.Run(name, func(t *testing.T) {
			ep := f.Endpoint(0)
			// Leave a message queued at node 1 to prove Close drops it.
			if err := ep.Send(1, 7, []byte("queued")); err != nil {
				t.Fatalf("Send before close: %v", err)
			}
			if err := f.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			if err := ep.Send(1, 7, []byte("x")); !errors.Is(err, ErrClosed) {
				t.Errorf("Send after close = %v, want ErrClosed", err)
			}
			if err := ep.Broadcast(7, []byte("x")); !errors.Is(err, ErrClosed) {
				t.Errorf("Broadcast after close = %v, want ErrClosed", err)
			}
			if _, err := f.Endpoint(1).Recv(7); !errors.Is(err, ErrClosed) {
				t.Errorf("Recv after close = %v, want ErrClosed", err)
			}
			if _, ok, err := f.Endpoint(1).TryRecv(7); ok || !errors.Is(err, ErrClosed) {
				t.Errorf("TryRecv after close = (%v, %v), want (false, ErrClosed)", ok, err)
			}
			// Receiving on a channel never used before Close must fail the
			// same way (mailboxes created lazily after Close are born closed).
			if _, err := ep.Recv(999); !errors.Is(err, ErrClosed) {
				t.Errorf("Recv on fresh channel after close = %v, want ErrClosed", err)
			}
		})
	}
}

// TestBarrierAfterClose pins that collectives fail with ErrClosed rather
// than deadlock when the fabric closes underneath them.
func TestBarrierAfterClose(t *testing.T) {
	for name, f := range fabrics(t, 3) {
		t.Run(name, func(t *testing.T) {
			if err := f.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			var wg sync.WaitGroup
			errs := make([]error, f.Nodes())
			for i := 0; i < f.Nodes(); i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					coll := NewCollective(f.Endpoint(NodeID(i)), 41, 42)
					errs[i] = coll.Barrier()
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if !errors.Is(err, ErrClosed) {
					t.Errorf("node %d Barrier after close = %v, want ErrClosed", i, err)
				}
			}
		})
	}
}
