package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mssg/internal/obs"
)

// The reliable layer multiplexes every logical channel over one reserved
// physical channel so a single pump goroutine per node can acknowledge
// data, absorb heartbeats, and reorder/dedup frames no matter which
// logical channels the application is currently receiving on. The
// channel is far above DataCutter's stream range and the query service's
// range; applications must not use it directly.
const rlChannel ChannelID = 0xFFFFFF00

// Reliable frame kinds.
const (
	rkData      byte = 0
	rkAck       byte = 1
	rkHeartbeat byte = 2
)

// rlHeaderLen is {kind byte, channel uint32, seq uint64, crc uint32}.
const rlHeaderLen = 1 + 4 + 8 + 4

// rlPoll is how often a blocked reliable Recv re-checks failure state.
const rlPoll = 20 * time.Millisecond

// ReliableOptions tunes the reliable-delivery layer. The zero value
// selects usable defaults.
type ReliableOptions struct {
	// RetransmitInitial is the first ack-wait interval; it doubles per
	// attempt up to RetransmitMax. Defaults: 15ms and 250ms.
	RetransmitInitial time.Duration
	RetransmitMax     time.Duration
	// SendTimeout bounds one Send's total retransmit budget; when
	// exceeded the send fails with ErrTimeout (or ErrNodeDown if the
	// peer was declared down meanwhile). <= 0 means 10s.
	SendTimeout time.Duration
	// RecvTimeout bounds one Recv; <= 0 means no deadline (a Recv still
	// fails fast with ErrNodeDown once any peer is declared down).
	RecvTimeout time.Duration
	// HeartbeatEvery is the keepalive period; <= 0 means 100ms.
	HeartbeatEvery time.Duration
	// HeartbeatBudget is how long a peer may stay silent (no data, ack,
	// or heartbeat) before it is declared down. <= 0 means
	// 10*HeartbeatEvery.
	HeartbeatBudget time.Duration
	// RejoinGrace governs recovery from a down declaration: once a down
	// peer is heard from again, it must keep answering for this long
	// before it is readmitted (guarding against a flapping link being
	// trusted on its first packet). <= 0 means 2*HeartbeatEvery; set
	// negative to make down declarations sticky (the pre-rejoin
	// behavior, used by tests that assert permanence).
	RejoinGrace time.Duration
}

func (o ReliableOptions) withDefaults() ReliableOptions {
	if o.RetransmitInitial <= 0 {
		o.RetransmitInitial = 15 * time.Millisecond
	}
	if o.RetransmitMax <= 0 {
		o.RetransmitMax = 250 * time.Millisecond
	}
	if o.SendTimeout <= 0 {
		o.SendTimeout = 10 * time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 100 * time.Millisecond
	}
	if o.HeartbeatBudget <= 0 {
		o.HeartbeatBudget = 10 * o.HeartbeatEvery
	}
	if o.RejoinGrace == 0 {
		o.RejoinGrace = 2 * o.HeartbeatEvery
	}
	return o
}

func rlEncode(kind byte, ch ChannelID, seq uint64, payload []byte) []byte {
	b := make([]byte, rlHeaderLen+len(payload))
	b[0] = kind
	binary.LittleEndian.PutUint32(b[1:5], uint32(ch))
	binary.LittleEndian.PutUint64(b[5:13], seq)
	copy(b[rlHeaderLen:], payload)
	crc := crc32.NewIEEE()
	crc.Write(b[:13])
	crc.Write(b[rlHeaderLen:])
	binary.LittleEndian.PutUint32(b[13:17], crc.Sum32())
	return b
}

func rlDecode(b []byte) (kind byte, ch ChannelID, seq uint64, payload []byte, err error) {
	if len(b) < rlHeaderLen {
		return 0, 0, 0, nil, fmt.Errorf("cluster: short reliable frame (%d bytes)", len(b))
	}
	crc := crc32.NewIEEE()
	crc.Write(b[:13])
	crc.Write(b[rlHeaderLen:])
	if crc.Sum32() != binary.LittleEndian.Uint32(b[13:17]) {
		return 0, 0, 0, nil, fmt.Errorf("cluster: reliable frame checksum mismatch")
	}
	return b[0], ChannelID(binary.LittleEndian.Uint32(b[1:5])),
		binary.LittleEndian.Uint64(b[5:13]), b[rlHeaderLen:], nil
}

// reliableFabric layers MPI-grade delivery — per-channel sequence
// numbers, ack/retransmit with capped exponential backoff, duplicate
// suppression, corruption detection, and heartbeat failure detection —
// on top of any inner Fabric (including a fault-injecting one).
type reliableFabric struct {
	inner     Fabric
	opts      ReliableOptions
	endpoints []*reliableEndpoint
	stop      chan struct{}

	// Per-channel counter groups plus whole-fabric protocol counters,
	// resolved once at construction (see internal/obs package doc).
	met           *fabricMetrics
	mHbSent       *obs.Counter
	mHbRecv       *obs.Counter
	mCorruptDrops *obs.Counter
	mNodeDown     *obs.Counter
	mRejoins      *obs.Counter
	mSendTimeouts *obs.Counter

	mu     sync.Mutex
	closed bool
}

// Unwrap exposes the wrapped fabric so chaos helpers (cluster.Kill) can
// reach a fault-injecting layer underneath.
func (f *reliableFabric) Unwrap() Fabric { return f.inner }

// NewReliable wraps inner with the reliable-delivery protocol. Closing
// the returned fabric closes inner too. The wrapper reserves channel
// 0xFFFFFF00 on the inner fabric for its frames.
func NewReliable(inner Fabric, opts ReliableOptions) Fabric {
	reg := obs.Default()
	f := &reliableFabric{
		inner: inner, opts: opts.withDefaults(), stop: make(chan struct{}),
		met:           newFabricMetrics("cluster.reliable"),
		mHbSent:       reg.Counter("cluster.reliable.heartbeats_sent"),
		mHbRecv:       reg.Counter("cluster.reliable.heartbeats_recv"),
		mCorruptDrops: reg.Counter("cluster.reliable.corrupt_drops"),
		mNodeDown:     reg.Counter("cluster.reliable.node_down_declared"),
		mRejoins:      reg.Counter("cluster.reliable.node_rejoined"),
		mSendTimeouts: reg.Counter("cluster.reliable.send_timeouts"),
	}
	now := time.Now().UnixNano()
	for i := 0; i < inner.Nodes(); i++ {
		ep := &reliableEndpoint{
			fabric:    f,
			inner:     inner.Endpoint(NodeID(i)),
			inboxes:   make(map[ChannelID]*mailbox),
			sendSeq:   make(map[pairKey]uint64),
			recvState: make(map[pairKey]*rlRecvState),
			waiters:   make(map[ackKey]chan struct{}),
			lastHeard: make([]atomic.Int64, inner.Nodes()),
			down:      make([]atomic.Bool, inner.Nodes()),
			reheard:   make([]atomic.Int64, inner.Nodes()),
		}
		for j := range ep.lastHeard {
			ep.lastHeard[j].Store(now)
		}
		f.endpoints = append(f.endpoints, ep)
	}
	for _, ep := range f.endpoints {
		go ep.pump()
		go ep.monitor()
	}
	return f
}

func (f *reliableFabric) Nodes() int { return f.inner.Nodes() }

func (f *reliableFabric) Endpoint(n NodeID) Endpoint {
	if err := Validate(n, f.inner.Nodes()); err != nil {
		panic(err)
	}
	return f.endpoints[n]
}

func (f *reliableFabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	close(f.stop)
	f.mu.Unlock()
	err := f.inner.Close()
	for _, ep := range f.endpoints {
		ep.closeInboxes()
	}
	return err
}

func (f *reliableFabric) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// ackKey identifies one outstanding unacknowledged send.
type ackKey struct {
	node NodeID
	ch   ChannelID
	seq  uint64
}

// rlRecvState orders one (sender, channel) stream: next is the sequence
// number owed to the application, stash holds early arrivals.
type rlRecvState struct {
	next  uint64
	stash map[uint64][]byte
}

type reliableEndpoint struct {
	fabric *reliableFabric
	inner  Endpoint

	mu        sync.Mutex
	inboxes   map[ChannelID]*mailbox
	sendSeq   map[pairKey]uint64
	recvState map[pairKey]*rlRecvState
	waiters   map[ackKey]chan struct{}

	lastHeard []atomic.Int64 // unix nanos, indexed by peer
	down      []atomic.Bool
	reheard   []atomic.Int64        // unix nanos a down peer resumed talking, 0 if silent
	termErr   atomic.Pointer[error] // local terminal failure (e.g. own crash)
}

func (e *reliableEndpoint) ID() NodeID { return e.inner.ID() }
func (e *reliableEndpoint) Nodes() int { return e.inner.Nodes() }

func (e *reliableEndpoint) inbox(ch ChannelID) *mailbox {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.inboxes[ch]
	if !ok {
		b = newMailbox(0) // always unbounded: the pump must never block
		if e.fabric.isClosed() || e.termErr.Load() != nil {
			b.close()
		}
		e.inboxes[ch] = b
	}
	return b
}

func (e *reliableEndpoint) closeInboxes() {
	e.mu.Lock()
	boxes := make([]*mailbox, 0, len(e.inboxes))
	for _, b := range e.inboxes {
		boxes = append(boxes, b)
	}
	e.mu.Unlock()
	for _, b := range boxes {
		b.close()
	}
}

// fail records a terminal local error and unblocks every receiver.
func (e *reliableEndpoint) fail(err error) {
	e.termErr.CompareAndSwap(nil, &err)
	e.closeInboxes()
}

// translate maps an inbox ErrClosed back to the real cause.
func (e *reliableEndpoint) translate(err error) error {
	if !errors.Is(err, ErrClosed) {
		return err
	}
	if e.fabric.isClosed() {
		return ErrClosed
	}
	if p := e.termErr.Load(); p != nil {
		return *p
	}
	return err
}

func (e *reliableEndpoint) heard(from NodeID) {
	if int(from) < len(e.lastHeard) && from != e.inner.ID() {
		e.lastHeard[from].Store(time.Now().UnixNano())
	}
}

// firstDown returns the lowest peer declared down, or -1.
func (e *reliableEndpoint) firstDown() NodeID {
	for j := range e.down {
		if e.down[j].Load() {
			return NodeID(j)
		}
	}
	return -1
}

// downError names every peer currently declared down (joined
// NodeDownErrors), or nil. Receivers return it instead of just the
// lowest casualty so failover filters that tolerate a known-dead peer
// still see a second, unexpected death in the same error.
func (e *reliableEndpoint) downError() error {
	var errs []error
	for j := range e.down {
		if e.down[j].Load() {
			errs = append(errs, errDown(NodeID(j)))
		}
	}
	return errors.Join(errs...)
}

func errDown(n NodeID) error {
	return &NodeDownError{Node: n, Reason: "exceeded its heartbeat budget"}
}

// pump is the per-node protocol engine: it drains the reserved channel,
// acknowledges and orders data frames, dispatches acks to waiting
// senders, and tracks peer liveness. Corrupt frames (checksum mismatch)
// are dropped; retransmission recovers them.
func (e *reliableEndpoint) pump() {
	for {
		msg, err := e.inner.Recv(rlChannel)
		if err != nil {
			e.fail(err)
			return
		}
		kind, ch, seq, payload, derr := rlDecode(msg.Payload)
		if derr != nil {
			e.fabric.mCorruptDrops.Inc()
			continue
		}
		e.heard(msg.From)
		switch kind {
		case rkHeartbeat:
			e.fabric.mHbRecv.Inc()
		case rkAck:
			e.fabric.met.channel(ch).acks.Inc()
			k := ackKey{msg.From, ch, seq}
			e.mu.Lock()
			if w, ok := e.waiters[k]; ok {
				close(w)
				delete(e.waiters, k)
			}
			e.mu.Unlock()
		case rkData:
			// Ack unconditionally: a duplicate means our previous ack
			// was lost.
			_ = e.inner.Send(msg.From, rlChannel, rlEncode(rkAck, ch, seq, nil))
			k := pairKey{msg.From, ch}
			e.mu.Lock()
			st, ok := e.recvState[k]
			if !ok {
				st = &rlRecvState{next: 1, stash: make(map[uint64][]byte)}
				e.recvState[k] = st
			}
			if seq < st.next {
				e.mu.Unlock()
				e.fabric.met.channel(ch).dups.Inc()
				continue // duplicate of an already-delivered frame
			}
			if _, dup := st.stash[seq]; dup {
				e.mu.Unlock()
				e.fabric.met.channel(ch).dups.Inc()
				continue
			}
			st.stash[seq] = payload
			var deliver []Message
			for {
				p, ok := st.stash[st.next]
				if !ok {
					break
				}
				delete(st.stash, st.next)
				deliver = append(deliver, Message{From: msg.From, Channel: ch, Payload: p})
				st.next++
			}
			e.mu.Unlock()
			if len(deliver) > 0 {
				e.fabric.met.channel(ch).recvs.Add(int64(len(deliver)))
				box := e.inbox(ch)
				for _, m := range deliver {
					_ = box.put(m)
				}
			}
		}
	}
}

// monitor sends heartbeats, declares silent peers down, and — when a
// down peer resumes answering — readmits it after it has stayed audible
// for the rejoin grace window. Heartbeats keep flowing to down peers so
// a recovered node hears us again and its own view can heal too.
func (e *reliableEndpoint) monitor() {
	t := time.NewTicker(e.fabric.opts.HeartbeatEvery)
	defer t.Stop()
	budget := e.fabric.opts.HeartbeatBudget
	grace := e.fabric.opts.RejoinGrace
	for {
		select {
		case <-e.fabric.stop:
			return
		case <-t.C:
		}
		now := time.Now().UnixNano()
		for j := 0; j < e.inner.Nodes(); j++ {
			if NodeID(j) == e.inner.ID() {
				continue
			}
			_ = e.inner.Send(NodeID(j), rlChannel, rlEncode(rkHeartbeat, 0, 0, nil))
			e.fabric.mHbSent.Inc()
			silentFor := now - e.lastHeard[j].Load()
			if !e.down[j].Load() {
				if silentFor > int64(budget) {
					e.reheard[j].Store(0)
					if !e.down[j].Swap(true) {
						e.fabric.mNodeDown.Inc()
						obs.DefaultTracer().Emit("cluster.node_down", map[string]string{
							"observer": strconv.Itoa(int(e.inner.ID())),
							"peer":     strconv.Itoa(j),
						})
					}
				}
				continue
			}
			if grace < 0 {
				continue // rejoin disabled: down is sticky
			}
			// Down peer: a fresh heartbeat within the budget means it is
			// talking again; readmit once it has stayed audible for the
			// whole grace window (one packet is not proof of recovery).
			if silentFor > int64(budget) {
				e.reheard[j].Store(0)
				continue
			}
			since := e.reheard[j].Load()
			if since == 0 {
				e.reheard[j].Store(now)
				continue
			}
			if now-since >= int64(grace) {
				e.reheard[j].Store(0)
				if e.down[j].Swap(false) {
					e.fabric.mRejoins.Inc()
					obs.DefaultTracer().Emit("cluster.node_rejoined", map[string]string{
						"observer": strconv.Itoa(int(e.inner.ID())),
						"peer":     strconv.Itoa(j),
					})
				}
			}
		}
	}
}

func (e *reliableEndpoint) Send(to NodeID, ch ChannelID, payload []byte) error {
	if e.fabric.isClosed() {
		return ErrClosed
	}
	if err := Validate(to, e.inner.Nodes()); err != nil {
		return err
	}
	if ch >= rlChannel {
		return fmt.Errorf("cluster: channel %#x is reserved by the reliable layer", ch)
	}
	if to == e.inner.ID() {
		// Local delivery: a queue operation, no protocol needed.
		return e.inbox(ch).put(Message{From: to, Channel: ch, Payload: payload})
	}
	if e.down[to].Load() {
		return errDown(to)
	}

	k := pairKey{to, ch}
	e.mu.Lock()
	e.sendSeq[k]++
	seq := e.sendSeq[k]
	ak := ackKey{to, ch, seq}
	acked := make(chan struct{})
	e.waiters[ak] = acked
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.waiters, ak)
		e.mu.Unlock()
	}()

	frame := rlEncode(rkData, ch, seq, payload)
	cm := e.fabric.met.channel(ch)
	cm.sends.Inc()
	cm.sendBytes.Add(int64(len(payload)))
	opts := &e.fabric.opts
	deadline := time.Now().Add(opts.SendTimeout)
	backoff := opts.RetransmitInitial
	attempts := 0
	for {
		if attempts++; attempts > 1 {
			cm.retransmits.Inc()
		}
		// The inner fabric owns each sent slice, so every (re)transmit
		// gets its own copy.
		c := make([]byte, len(frame))
		copy(c, frame)
		if err := e.inner.Send(to, rlChannel, c); err != nil {
			if errors.Is(err, ErrClosed) || errors.Is(err, ErrNodeDown) {
				return err
			}
			// Otherwise treat as transient and keep retrying below.
		}
		timer := time.NewTimer(backoff)
		select {
		case <-acked:
			timer.Stop()
			return nil
		case <-e.fabric.stop:
			timer.Stop()
			return ErrClosed
		case <-timer.C:
		}
		if e.down[to].Load() {
			return errDown(to)
		}
		if time.Now().After(deadline) {
			e.fabric.mSendTimeouts.Inc()
			return fmt.Errorf("%w: send %d->%d ch %d seq %d unacked after %v",
				ErrTimeout, e.inner.ID(), to, ch, seq, opts.SendTimeout)
		}
		if backoff *= 2; backoff > opts.RetransmitMax {
			backoff = opts.RetransmitMax
		}
	}
}

func (e *reliableEndpoint) Broadcast(ch ChannelID, payload []byte) error {
	for n := 0; n < e.inner.Nodes(); n++ {
		if NodeID(n) == e.inner.ID() {
			continue
		}
		c := make([]byte, len(payload))
		copy(c, payload)
		if err := e.Send(NodeID(n), ch, c); err != nil {
			return err
		}
	}
	return nil
}

func (e *reliableEndpoint) Recv(ch ChannelID) (Message, error) {
	opts := &e.fabric.opts
	var deadline time.Time
	if opts.RecvTimeout > 0 {
		deadline = time.Now().Add(opts.RecvTimeout)
	}
	box := e.inbox(ch)
	for {
		msg, ok, err := box.getWithin(rlPoll)
		if err != nil {
			return Message{}, e.translate(err)
		}
		if ok {
			return msg, nil
		}
		if e.firstDown() >= 0 {
			return Message{}, e.downError()
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return Message{}, fmt.Errorf("%w: recv on channel %d after %v",
				ErrTimeout, ch, opts.RecvTimeout)
		}
	}
}

func (e *reliableEndpoint) RecvCtx(ctx context.Context, ch ChannelID) (Message, error) {
	if ctx.Done() == nil {
		return e.Recv(ch)
	}
	// The reliable Recv is already a poll loop (it must notice peers
	// going down); adding a ctx check per iteration bounds cancellation
	// latency to rlPoll.
	opts := &e.fabric.opts
	var deadline time.Time
	if opts.RecvTimeout > 0 {
		deadline = time.Now().Add(opts.RecvTimeout)
	}
	box := e.inbox(ch)
	for {
		msg, ok, err := box.getWithin(rlPoll)
		if err != nil {
			return Message{}, e.translate(err)
		}
		if ok {
			return msg, nil
		}
		if err := ctx.Err(); err != nil {
			return Message{}, err
		}
		if e.firstDown() >= 0 {
			return Message{}, e.downError()
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return Message{}, fmt.Errorf("%w: recv on channel %d after %v",
				ErrTimeout, ch, opts.RecvTimeout)
		}
	}
}

func (e *reliableEndpoint) TryRecv(ch ChannelID) (Message, bool, error) {
	msg, ok, err := e.inbox(ch).tryGet()
	if err != nil {
		return Message{}, false, e.translate(err)
	}
	if ok {
		return msg, true, nil
	}
	if e.firstDown() >= 0 {
		return Message{}, false, e.downError()
	}
	return Message{}, false, nil
}
