package cluster

import (
	"fmt"
	"sync"

	"mssg/internal/obs"
)

// chanMetrics is the pre-resolved per-channel counter group of one fabric
// layer. Fields are looked up once, when the channel first carries
// traffic, so the hot path pays one map read under RLock plus atomic
// adds — never a name format or registry lookup per message.
type chanMetrics struct {
	sends       *obs.Counter // data frames handed to the layer below
	sendBytes   *obs.Counter
	recvs       *obs.Counter // frames delivered to the application
	retransmits *obs.Counter // reliable: ack-timeout resends
	dups        *obs.Counter // reliable: duplicate frames suppressed
	acks        *obs.Counter // reliable: acks received
	drops       *obs.Counter // faulty: frames discarded in transit
	injected    *obs.Counter // faulty: dup+corrupt+delay+send-error injections
}

// fabricMetrics lazily builds chanMetrics per channel under a prefix
// ("cluster.reliable", "cluster.faulty"). Channel cardinality is tiny in
// practice — DataCutter streams, the BFS fringe/collective channels, and
// the reserved reliable channel — so the map stays small.
type fabricMetrics struct {
	prefix string

	mu  sync.RWMutex
	chs map[ChannelID]*chanMetrics
}

func newFabricMetrics(prefix string) *fabricMetrics {
	return &fabricMetrics{prefix: prefix, chs: make(map[ChannelID]*chanMetrics)}
}

// channel returns the counter group for ch, creating it on first use.
func (m *fabricMetrics) channel(ch ChannelID) *chanMetrics {
	m.mu.RLock()
	c, ok := m.chs[ch]
	m.mu.RUnlock()
	if ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok = m.chs[ch]; ok {
		return c
	}
	r := obs.Default()
	p := fmt.Sprintf("%s.ch_%08x", m.prefix, uint32(ch))
	c = &chanMetrics{
		sends:       r.Counter(p + ".sends"),
		sendBytes:   r.Counter(p + ".send_bytes"),
		recvs:       r.Counter(p + ".recvs"),
		retransmits: r.Counter(p + ".retransmits"),
		dups:        r.Counter(p + ".dups"),
		acks:        r.Counter(p + ".acks"),
		drops:       r.Counter(p + ".drops"),
		injected:    r.Counter(p + ".injected"),
	}
	m.chs[ch] = c
	return c
}
