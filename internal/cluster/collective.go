package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
)

// Collective provides the synchronization primitives the parallel BFS
// needs on top of point-to-point messaging: barriers, all-reduce, and
// root broadcast. All nodes of a fabric must construct a Collective with
// the same channel pair and call the same operations in the same order,
// exactly as with MPI collectives.
//
// Implementation: a central-coordinator scheme. Node 0 gathers one message
// per peer on the "up" channel, combines, and answers on the "down"
// channel. A node cannot start round k+1 before its round-k reply arrives,
// so rounds never interleave and no sequence numbers are needed.
type Collective struct {
	ep     Endpoint
	chUp   ChannelID
	chDown ChannelID
	ctx    context.Context // nil: operations block until close
	parts  []NodeID        // nil: every fabric node participates
}

// NewCollective binds a collective context to an endpoint. chUp and chDown
// must be distinct and reserved for this use across the whole fabric.
func NewCollective(ep Endpoint, chUp, chDown ChannelID) *Collective {
	if chUp == chDown {
		panic("cluster: collective needs two distinct channels")
	}
	return &Collective{ep: ep, chUp: chUp, chDown: chDown}
}

// WithContext returns a copy whose operations additionally abort with
// ctx.Err() when ctx is cancelled. Every node of the collective must use
// the same cancellation discipline or a round may leave peers waiting on
// a reply that never comes.
func (c *Collective) WithContext(ctx context.Context) *Collective {
	cc := *c
	cc.ctx = ctx
	return &cc
}

// WithParticipants returns a copy whose operations span only the given
// nodes — the failover path's surviving subcluster. The coordinator
// becomes the lowest-numbered participant, and replies go point-to-point
// instead of Broadcast so dead non-participants are never addressed.
// nodes must be sorted ascending, duplicate-free, and include the local
// endpoint; every participant must pass the identical list.
func (c *Collective) WithParticipants(nodes []NodeID) *Collective {
	cc := *c
	cc.parts = append([]NodeID(nil), nodes...)
	return &cc
}

func (c *Collective) recv(ch ChannelID) (Message, error) {
	if c.ctx == nil {
		return c.ep.Recv(ch)
	}
	return c.ep.RecvCtx(c.ctx, ch)
}

func encodeInt64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func decodeInt64(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("cluster: collective payload has %d bytes, want 8", len(b))
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

// reduce runs one coordinator round combining each node's contribution
// with f and returning the combined value on every node.
func (c *Collective) reduce(v int64, f func(a, b int64) int64) (int64, error) {
	n := c.ep.Nodes()
	root := NodeID(0)
	if c.parts != nil {
		n = len(c.parts)
		root = c.parts[0]
	}
	if n == 1 {
		return v, nil
	}
	if c.ep.ID() == root {
		acc := v
		for i := 0; i < n-1; i++ {
			msg, err := c.recv(c.chUp)
			if err != nil {
				return 0, err
			}
			x, err := decodeInt64(msg.Payload)
			if err != nil {
				return 0, err
			}
			acc = f(acc, x)
		}
		if c.parts != nil {
			for _, p := range c.parts {
				if p == root {
					continue
				}
				if err := c.ep.Send(p, c.chDown, encodeInt64(acc)); err != nil {
					return 0, err
				}
			}
		} else if err := c.ep.Broadcast(c.chDown, encodeInt64(acc)); err != nil {
			return 0, err
		}
		return acc, nil
	}
	if err := c.ep.Send(root, c.chUp, encodeInt64(v)); err != nil {
		return 0, err
	}
	msg, err := c.recv(c.chDown)
	if err != nil {
		return 0, err
	}
	return decodeInt64(msg.Payload)
}

// Barrier blocks until every node has entered the barrier.
func (c *Collective) Barrier() error {
	_, err := c.reduce(0, func(a, b int64) int64 { return a + b })
	return err
}

// AllReduceSum returns the sum of every node's v, on every node.
func (c *Collective) AllReduceSum(v int64) (int64, error) {
	return c.reduce(v, func(a, b int64) int64 { return a + b })
}

// AllReduceMax returns the maximum of every node's v, on every node.
func (c *Collective) AllReduceMax(v int64) (int64, error) {
	return c.reduce(v, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllReduceMin returns the minimum of every node's v, on every node.
func (c *Collective) AllReduceMin(v int64) (int64, error) {
	return c.reduce(v, func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
}

// BcastFromRoot distributes root's value to all nodes. Non-root callers
// pass any value; every caller receives root's.
func (c *Collective) BcastFromRoot(root NodeID, v int64) (int64, error) {
	n := c.ep.Nodes()
	if c.parts != nil {
		n = len(c.parts)
	}
	if n == 1 {
		return v, nil
	}
	if err := Validate(root, c.ep.Nodes()); err != nil {
		return 0, err
	}
	// Reuse the coordinator: root's value rides the reduction, every other
	// node contributes an identity that the combiner ignores.
	self := c.ep.ID()
	var contribution int64
	if self == root {
		contribution = v
	}
	marker := int64(-1 << 62)
	f := func(a, b int64) int64 {
		if a != marker {
			return a
		}
		return b
	}
	if self == root {
		return c.reduce(contribution, f)
	}
	return c.reduce(marker, f)
}
