package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// collectFor drains ep's channel for d, returning the payloads seen.
func collectFor(ep Endpoint, ch ChannelID, d time.Duration) [][]byte {
	deadline := time.Now().Add(d)
	var got [][]byte
	for time.Now().Before(deadline) {
		msg, ok, err := ep.TryRecv(ch)
		if err != nil {
			return got
		}
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		got = append(got, msg.Payload)
	}
	return got
}

// TestFaultyDeterministicDrops pins that the same plan perturbs the same
// messages on every run: two fresh fabrics with the same seed must
// deliver exactly the same subset of a numbered message sequence.
func TestFaultyDeterministicDrops(t *testing.T) {
	run := func(seed int64) []string {
		inner := NewInProc(2, 0)
		f := NewFaulty(inner, Plan{Seed: seed, DropProb: 0.3})
		defer f.Close()
		src, dst := f.Endpoint(0), f.Endpoint(1)
		for i := 0; i < 200; i++ {
			if err := src.Send(1, 5, []byte(fmt.Sprintf("m%03d", i))); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		var got []string
		for {
			msg, ok, err := dst.TryRecv(5)
			if err != nil || !ok {
				break
			}
			got = append(got, string(msg.Payload))
		}
		return got
	}

	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("30%% drop delivered %d of 200 — injection inert or total", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed delivered different subsets:\n%v\n%v", a, b)
	}
	c := run(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds delivered identical subsets")
	}
}

// TestFaultyDuplicates pins that DupProb delivers extra copies.
func TestFaultyDuplicates(t *testing.T) {
	f := NewFaulty(NewInProc(2, 0), Plan{Seed: 7, DupProb: 0.5})
	defer f.Close()
	src := f.Endpoint(0)
	const n = 100
	for i := 0; i < n; i++ {
		if err := src.Send(1, 5, []byte{byte(i)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	got := collectFor(f.Endpoint(1), 5, 50*time.Millisecond)
	if len(got) <= n {
		t.Fatalf("50%% duplication delivered %d of %d sends — no extras seen", len(got), n)
	}
}

// TestFaultyCorruption pins that corrupted payloads differ in exactly
// one byte and arrive alongside intact ones.
func TestFaultyCorruption(t *testing.T) {
	f := NewFaulty(NewInProc(2, 0), Plan{Seed: 11, CorruptProb: 0.5})
	defer f.Close()
	src := f.Endpoint(0)
	want := []byte("payload-under-test")
	const n = 100
	for i := 0; i < n; i++ {
		p := make([]byte, len(want))
		copy(p, want)
		if err := src.Send(1, 5, p); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	var corrupt, intact int
	for _, p := range collectFor(f.Endpoint(1), 5, 50*time.Millisecond) {
		if bytes.Equal(p, want) {
			intact++
			continue
		}
		corrupt++
		if len(p) != len(want) {
			t.Fatalf("corruption changed length: %d != %d", len(p), len(want))
		}
		diff := 0
		for i := range p {
			if p[i] != want[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("corrupted payload differs in %d bytes, want 1", diff)
		}
	}
	if corrupt == 0 || intact == 0 {
		t.Fatalf("50%% corruption gave corrupt=%d intact=%d — expected a mix", corrupt, intact)
	}
}

// TestFaultyCrashSchedule pins the crash semantics: after the scripted
// send budget, the node's own ops fail with ErrNodeDown and messages to
// it vanish without a sender-side error.
func TestFaultyCrashSchedule(t *testing.T) {
	f := NewFaulty(NewInProc(2, 0), Plan{Seed: 1, Crashes: []Crash{{Node: 0, AfterSends: 3}}})
	defer f.Close()
	doomed, peer := f.Endpoint(0), f.Endpoint(1)

	for i := 0; i < 3; i++ {
		if err := doomed.Send(1, 5, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d before crash: %v", i, err)
		}
	}
	if err := doomed.Send(1, 5, []byte{99}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("send past crash budget = %v, want ErrNodeDown", err)
	}
	if _, _, err := doomed.TryRecv(5); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("TryRecv on crashed node = %v, want ErrNodeDown", err)
	}
	// Sends to the dead node vanish silently, like datagrams to a dead host.
	if err := peer.Send(0, 5, []byte{1}); err != nil {
		t.Fatalf("send to crashed node = %v, want nil (silent drop)", err)
	}
	// The three pre-crash messages made it out.
	if got := collectFor(peer, 5, 20*time.Millisecond); len(got) != 3 {
		t.Fatalf("peer received %d pre-crash messages, want 3", len(got))
	}
}

// TestFaultySendErr pins the ambiguous-failure injection: the send
// reports an ErrTimeout-wrapped error even though the message was
// delivered, which is exactly what retry protocols must tolerate.
func TestFaultySendErr(t *testing.T) {
	f := NewFaulty(NewInProc(2, 0), Plan{Seed: 3, SendErrProb: 1.0})
	defer f.Close()
	err := f.Endpoint(0).Send(1, 5, []byte("ambiguous"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("send = %v, want ErrTimeout-wrapped injected failure", err)
	}
	msg, ok, err2 := f.Endpoint(1).TryRecv(5)
	if err2 != nil || !ok || string(msg.Payload) != "ambiguous" {
		t.Fatalf("message should have been delivered despite the error: ok=%v err=%v", ok, err2)
	}
}

// TestFaultyDelayReorders pins that delayed messages still arrive.
func TestFaultyDelayReorders(t *testing.T) {
	f := NewFaulty(NewInProc(2, 0), Plan{Seed: 9, DelayProb: 0.5, MaxDelay: 5 * time.Millisecond})
	defer f.Close()
	src := f.Endpoint(0)
	const n = 50
	for i := 0; i < n; i++ {
		if err := src.Send(1, 5, []byte{byte(i)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	got := collectFor(f.Endpoint(1), 5, 100*time.Millisecond)
	if len(got) != n {
		t.Fatalf("delays lost messages: got %d of %d", len(got), n)
	}
}
