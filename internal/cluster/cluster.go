// Package cluster simulates the distributed-memory parallel machine MSSG
// was evaluated on (a 64-node Linux cluster, paper chapter 5).
//
// A Fabric is a set of numbered nodes connected by a message-passing
// transport. Each node holds an Endpoint through which it can send
// point-to-point messages, broadcast, and participate in collectives
// (barrier, all-reduce). Two fabrics are provided:
//
//   - the in-process fabric (NewInProc), where every node is a goroutine
//     and messages travel over Go channels — the default for experiments;
//   - the TCP fabric (NewTCP), where nodes exchange length-prefixed frames
//     over loopback sockets, exercising a real wire protocol.
//
// The abstraction mirrors what DataCutter gets from MPI in the paper:
// ordered, reliable, tagged point-to-point messages. Higher layers
// (package datacutter, the BFS in package query) are transport-agnostic.
package cluster

import (
	"context"
	"errors"
	"fmt"
)

// NodeID numbers the nodes of a fabric, 0..N-1.
type NodeID int

// ChannelID tags a logical communication channel (an MPI tag). Different
// services use disjoint channel ranges so their traffic never interleaves.
type ChannelID uint32

// Message is one delivered datagram.
type Message struct {
	From    NodeID
	Channel ChannelID
	Payload []byte
}

// ErrClosed is returned by endpoint operations after the fabric shuts
// down.
var ErrClosed = errors.New("cluster: fabric closed")

// ErrNodeDown is returned once a peer is considered failed: by the
// reliable layer when a node exceeds its heartbeat budget, and by the
// fault-injecting fabric on a node its Plan has crashed. Operations that
// would need the dead node fail fast with this error instead of blocking.
var ErrNodeDown = errors.New("cluster: node down")

// ErrTimeout is returned by the reliable layer when a send exhausts its
// retransmit budget or a receive passes its deadline without the peer
// being declared down. It marks a transient (retryable) failure, in
// contrast to ErrNodeDown.
var ErrTimeout = errors.New("cluster: operation timed out")

// Endpoint is one node's handle on the fabric. An Endpoint may be used
// from multiple goroutines; receives on distinct channels are independent.
type Endpoint interface {
	// ID returns this node's number.
	ID() NodeID
	// Nodes returns the fabric size.
	Nodes() int
	// Send delivers payload to node `to` on the given channel. The payload
	// is owned by the fabric after Send returns; callers must not reuse it.
	Send(to NodeID, ch ChannelID, payload []byte) error
	// Broadcast sends payload to every node except this one.
	Broadcast(ch ChannelID, payload []byte) error
	// Recv blocks until a message arrives on ch or the fabric closes.
	Recv(ch ChannelID) (Message, error)
	// RecvCtx is Recv that additionally unblocks when ctx is cancelled,
	// returning ctx.Err(). A queued message wins over a cancellation that
	// races with it.
	RecvCtx(ctx context.Context, ch ChannelID) (Message, error)
	// TryRecv returns a message if one is queued on ch; ok=false when the
	// queue is empty. It never blocks.
	TryRecv(ch ChannelID) (msg Message, ok bool, err error)
}

// Fabric is a cluster of nodes.
type Fabric interface {
	// Nodes returns the cluster size.
	Nodes() int
	// Endpoint returns node n's endpoint. Endpoints are created eagerly
	// and calling Endpoint repeatedly returns the same value.
	Endpoint(n NodeID) Endpoint
	// Close tears the fabric down; all pending and future receives fail
	// with ErrClosed.
	Close() error
}

// Validate checks a node id against a fabric size.
func Validate(n NodeID, size int) error {
	if n < 0 || int(n) >= size {
		return fmt.Errorf("cluster: node %d out of range [0,%d)", n, size)
	}
	return nil
}

// Owner returns the node that owns vertex-like key v under the globally
// known mapping the paper uses (GID % p, §4.2).
func Owner(v int64, nodes int) NodeID {
	if v < 0 {
		v = -v
	}
	return NodeID(v % int64(nodes))
}
