package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// fastReliable keeps protocol timers short enough for unit tests while
// leaving generous absolute budgets for slow CI machines.
func fastReliable() ReliableOptions {
	return ReliableOptions{
		RetransmitInitial: 2 * time.Millisecond,
		RetransmitMax:     20 * time.Millisecond,
		SendTimeout:       5 * time.Second,
		HeartbeatEvery:    10 * time.Millisecond,
		HeartbeatBudget:   150 * time.Millisecond,
	}
}

// TestReliableMasksFaults is the layer's core guarantee: over a fabric
// that drops, duplicates, corrupts, and delays traffic, every message
// arrives exactly once and in per-(sender, channel) order.
func TestReliableMasksFaults(t *testing.T) {
	inner := NewFaulty(NewInProc(2, 0), Plan{
		Seed:     21,
		DropProb: 0.2, DupProb: 0.05, CorruptProb: 0.05, DelayProb: 0.1,
		MaxDelay: time.Millisecond,
	})
	f := NewReliable(inner, fastReliable())
	defer f.Close()

	const n = 150
	channels := []ChannelID{3, 9}
	errc := make(chan error, 1)
	go func() {
		src := f.Endpoint(0)
		for i := 0; i < n; i++ {
			for _, ch := range channels {
				if err := src.Send(1, ch, []byte(fmt.Sprintf("ch%d-%04d", ch, i))); err != nil {
					errc <- err
					return
				}
			}
		}
		errc <- nil
	}()

	dst := f.Endpoint(1)
	for i := 0; i < n; i++ {
		for _, ch := range channels {
			msg, err := dst.Recv(ch)
			if err != nil {
				t.Fatalf("recv ch %d #%d: %v", ch, i, err)
			}
			if want := fmt.Sprintf("ch%d-%04d", ch, i); string(msg.Payload) != want {
				t.Fatalf("ch %d #%d: got %q, want %q (lost, duplicated, or reordered)",
					ch, i, msg.Payload, want)
			}
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("sender: %v", err)
	}
	// Nothing extra may be buffered: exactly-once means no trailing dups.
	if msg, ok, _ := dst.TryRecv(channels[0]); ok {
		t.Fatalf("unexpected extra message %q after the full sequence", msg.Payload)
	}
}

// TestReliableDetectsCrash pins failure detection: once a peer crashes,
// sends to it fail with ErrNodeDown within the heartbeat budget instead
// of retrying forever, and blocked receives fail fast too.
func TestReliableDetectsCrash(t *testing.T) {
	inner := NewFaulty(NewInProc(3, 0), Plan{
		Seed:    5,
		Crashes: []Crash{{Node: 1, AfterSends: 0}}, // node 1 dies immediately
	})
	f := NewReliable(inner, fastReliable())
	defer f.Close()

	src := f.Endpoint(0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := src.Send(1, 4, []byte("into the void"))
		if errors.Is(err, ErrNodeDown) {
			break
		}
		if err != nil {
			t.Fatalf("send = %v, want ErrNodeDown (eventually)", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("sends to a crashed node kept succeeding past the heartbeat budget")
		}
	}
	// A receive with nothing inbound must also fail fast, not block.
	start := time.Now()
	if _, err := src.Recv(4); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("recv = %v, want ErrNodeDown", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("recv took %v to report the dead peer", time.Since(start))
	}
}

// TestReliableSurvivesAmbiguousSendErrors pins that the layer absorbs
// transport-level send errors (the injected ErrTimeout ambiguous
// failure) by retransmitting until acked.
func TestReliableSurvivesAmbiguousSendErrors(t *testing.T) {
	inner := NewFaulty(NewInProc(2, 0), Plan{Seed: 13, SendErrProb: 0.5, DropProb: 0.2})
	f := NewReliable(inner, fastReliable())
	defer f.Close()

	go func() {
		src := f.Endpoint(0)
		for i := 0; i < 50; i++ {
			if err := src.Send(1, 2, []byte{byte(i)}); err != nil {
				return
			}
		}
	}()
	dst := f.Endpoint(1)
	for i := 0; i < 50; i++ {
		msg, err := dst.Recv(2)
		if err != nil {
			t.Fatalf("recv #%d: %v", i, err)
		}
		if msg.Payload[0] != byte(i) {
			t.Fatalf("recv #%d: got %d", i, msg.Payload[0])
		}
	}
}

// TestReliableReservedChannel pins that applications cannot collide with
// the protocol's reserved channel.
func TestReliableReservedChannel(t *testing.T) {
	f := NewReliable(NewInProc(2, 0), fastReliable())
	defer f.Close()
	if err := f.Endpoint(0).Send(1, rlChannel, []byte("x")); err == nil {
		t.Fatal("send on the reserved channel should fail")
	}
}

// TestReliableOpsAfterClose extends the post-Close ErrClosed contract to
// the reliable wrapper.
func TestReliableOpsAfterClose(t *testing.T) {
	f := NewReliable(NewInProc(2, 0), fastReliable())
	ep := f.Endpoint(0)
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ep.Send(1, 3, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
	if _, err := ep.Recv(3); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after close = %v, want ErrClosed", err)
	}
	if _, ok, err := ep.TryRecv(3); ok || !errors.Is(err, ErrClosed) {
		t.Errorf("TryRecv after close = (%v, %v), want (false, ErrClosed)", ok, err)
	}
}

// TestReliableNoGoroutineLeak pins that Close reaps the per-node pump
// and monitor goroutines.
func TestReliableNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		f := NewReliable(NewFaulty(NewInProc(4, 0), Plan{Seed: 2, DropProb: 0.1}), fastReliable())
		go f.Endpoint(0).Send(1, 1, []byte("hello"))
		f.Endpoint(1).Recv(1)
		f.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
}
