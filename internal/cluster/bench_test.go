package cluster

import "testing"

func BenchmarkInProcPingPong(b *testing.B) {
	f := NewInProc(2, 64)
	defer f.Close()
	ep0, ep1 := f.Endpoint(0), f.Endpoint(1)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ep0.Send(1, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := ep1.Recv(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPPingPong(b *testing.B) {
	f, err := NewTCP(2, 64)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	ep0, ep1 := f.Endpoint(0), f.Endpoint(1)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ep0.Send(1, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := ep1.Recv(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectiveAllReduce(b *testing.B) {
	const p = 8
	f := NewInProc(p, 64)
	defer f.Close()
	b.ResetTimer()
	err := Run(f, func(ep Endpoint) error {
		c := NewCollective(ep, 10, 11)
		for i := 0; i < b.N; i++ {
			if _, err := c.AllReduceSum(1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
