package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxFramePayload caps a frame's declared payload length. A corrupt or
// hostile length field must produce a clean decode error, not a multi-GB
// allocation.
const maxFramePayload = 64 << 20

// readFrame decodes one {channel uint32, length uint32, payload} frame.
// io.EOF is returned only at a clean frame boundary; a frame truncated
// mid-header or mid-payload yields io.ErrUnexpectedEOF. Oversized length
// fields fail before allocating, and large payloads are read through a
// growing buffer so a lying header cannot over-allocate past the bytes
// actually on the wire.
func readFrame(r io.Reader) (ChannelID, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("cluster: truncated frame header: %w", err)
		}
		return 0, nil, err
	}
	ch := ChannelID(binary.LittleEndian.Uint32(hdr[0:4]))
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("cluster: frame payload of %d bytes exceeds cap %d", n, maxFramePayload)
	}
	if n <= 1<<20 {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, fmt.Errorf("cluster: truncated frame payload: %w", err)
		}
		return ch, payload, nil
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("cluster: truncated frame payload: %w", err)
	}
	return ch, buf.Bytes(), nil
}

// tcpFabric runs every node in this process but routes all traffic through
// loopback TCP connections with a length-prefixed frame protocol, so the
// full serialize → socket → deserialize path is exercised. One connection
// exists per ordered node pair (i -> j), established at fabric creation.
//
// Wire format: a connection starts with the 4-byte sender id; every frame
// is then {channel uint32, length uint32, payload [length]byte}, all
// little-endian.
type tcpFabric struct {
	size      int
	endpoints []*tcpEndpoint
	listeners []net.Listener

	mu     sync.Mutex
	closed bool
	conns  []net.Conn
}

// NewTCP creates a TCP-over-loopback fabric with `size` nodes. As with
// NewInProc, buffer <= 0 (the default) makes receive mailboxes unbounded
// so sends never deadlock; a positive buffer bounds them.
func NewTCP(size, buffer int) (Fabric, error) {
	if size < 1 {
		return nil, fmt.Errorf("cluster: fabric needs at least one node")
	}
	f := &tcpFabric{size: size}

	// Start one listener per node.
	addrs := make([]string, size)
	for i := 0; i < size; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: listen: %w", err)
		}
		f.listeners = append(f.listeners, l)
		addrs[i] = l.Addr().String()
		f.endpoints = append(f.endpoints, &tcpEndpoint{
			fabric: f,
			id:     NodeID(i),
			buffer: buffer,
			boxes:  make(map[ChannelID]*mailbox),
			peers:  make([]*tcpPeer, size),
		})
	}

	// Accept loops: dispatch incoming frames into the local mailboxes.
	var acceptWG sync.WaitGroup
	for i := 0; i < size; i++ {
		ep := f.endpoints[i]
		need := size - 1
		acceptWG.Add(1)
		go func(l net.Listener, ep *tcpEndpoint, need int) {
			defer acceptWG.Done()
			for c := 0; c < need; c++ {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				f.trackConn(conn)
				go ep.readLoop(conn)
			}
		}(f.listeners[i], ep, need)
	}

	// Dial the full mesh: node i owns the i->j connection.
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			if i == j {
				continue
			}
			conn, err := net.Dial("tcp", addrs[j])
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("cluster: dial %d->%d: %w", i, j, err)
			}
			f.trackConn(conn)
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(i))
			if _, err := conn.Write(hdr[:]); err != nil {
				f.Close()
				return nil, fmt.Errorf("cluster: handshake %d->%d: %w", i, j, err)
			}
			f.endpoints[i].peers[j] = &tcpPeer{conn: conn}
		}
	}
	acceptWG.Wait()
	return f, nil
}

func (f *tcpFabric) trackConn(c net.Conn) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		c.Close()
		return
	}
	f.conns = append(f.conns, c)
}

func (f *tcpFabric) Nodes() int { return f.size }

func (f *tcpFabric) Endpoint(n NodeID) Endpoint {
	if err := Validate(n, f.size); err != nil {
		panic(err)
	}
	return f.endpoints[n]
}

func (f *tcpFabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	conns := f.conns
	f.conns = nil
	f.mu.Unlock()

	for _, l := range f.listeners {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, ep := range f.endpoints {
		ep.close()
	}
	return nil
}

func (f *tcpFabric) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
}

type tcpEndpoint struct {
	fabric *tcpFabric
	id     NodeID
	buffer int
	peers  []*tcpPeer

	mu    sync.Mutex
	boxes map[ChannelID]*mailbox
}

func (e *tcpEndpoint) box(ch ChannelID) *mailbox {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.boxes[ch]
	if !ok {
		b = newMailbox(e.buffer)
		if e.fabric.isClosed() {
			b.close()
		}
		e.boxes[ch] = b
	}
	return b
}

func (e *tcpEndpoint) close() {
	e.mu.Lock()
	boxes := make([]*mailbox, 0, len(e.boxes))
	for _, b := range e.boxes {
		boxes = append(boxes, b)
	}
	e.mu.Unlock()
	for _, b := range boxes {
		b.close()
	}
}

// readLoop consumes frames from one inbound connection and dispatches
// them to mailboxes until the connection or fabric closes, or a frame
// fails to decode (the peer is then considered broken and dropped).
func (e *tcpEndpoint) readLoop(conn net.Conn) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return
	}
	from := NodeID(binary.LittleEndian.Uint32(hdr[:]))
	if Validate(from, e.fabric.size) != nil {
		conn.Close()
		return
	}
	for {
		ch, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		if e.box(ch).put(Message{From: from, Channel: ch, Payload: payload}) != nil {
			return
		}
	}
}

func (e *tcpEndpoint) ID() NodeID { return e.id }

func (e *tcpEndpoint) Nodes() int { return e.fabric.size }

func (e *tcpEndpoint) Send(to NodeID, ch ChannelID, payload []byte) error {
	if err := Validate(to, e.fabric.size); err != nil {
		return err
	}
	if to == e.id {
		// Local delivery without the wire.
		return e.box(ch).put(Message{From: e.id, Channel: ch, Payload: payload})
	}
	if e.fabric.isClosed() {
		return ErrClosed
	}
	p := e.peers[to]
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(ch))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.conn.Write(frame[:]); err != nil {
		return e.sendErr(to, err)
	}
	if _, err := p.conn.Write(payload); err != nil {
		return e.sendErr(to, err)
	}
	return nil
}

// sendErr wraps a connection write failure. A write that raced with
// fabric shutdown reports ErrClosed, not the raw net error, so callers
// see the same post-Close contract on every fabric.
func (e *tcpEndpoint) sendErr(to NodeID, err error) error {
	if e.fabric.isClosed() {
		return ErrClosed
	}
	return fmt.Errorf("cluster: send %d->%d: %w", e.id, to, err)
}

func (e *tcpEndpoint) Broadcast(ch ChannelID, payload []byte) error {
	for n := 0; n < e.fabric.size; n++ {
		if NodeID(n) == e.id {
			continue
		}
		if err := e.Send(NodeID(n), ch, payload); err != nil {
			return err
		}
	}
	return nil
}

func (e *tcpEndpoint) Recv(ch ChannelID) (Message, error) {
	return e.box(ch).get()
}

func (e *tcpEndpoint) RecvCtx(ctx context.Context, ch ChannelID) (Message, error) {
	return e.box(ch).getCtx(ctx)
}

func (e *tcpEndpoint) TryRecv(ch ChannelID) (Message, bool, error) {
	return e.box(ch).tryGet()
}
