// Live shard migration: the transport-level engine that moves shard data
// between nodes in three passes — bulk copy, catch-up, verify — while
// the rest of the system keeps serving queries. The engine is data
// agnostic: what a shard is, which bytes move, and how the destination
// checks them is delegated to a per-node MigratePeer (internal/ingest
// implements one over graph windows). The engine owns pass sequencing,
// end-of-stream accounting, the phase-boundary gates every participant
// agrees on, and the global verify verdict.
//
// Each pass runs shipper and receiver concurrently on every participant;
// a pass ends when every peer has received an EOS frame from every other
// peer. Passes are separated by an all-reduce gate that doubles as the
// abort broadcast: the coordinator (lowest participant) runs the caller's
// phase hook and contributes 0 to the gate when the hook vetoes, so all
// nodes abandon the migration at the same boundary. Running over the
// reliable fabric gives the copy stream exactly-once windows (seq/ack/
// dedup) and turns a mid-migration participant death into a prompt
// NodeDownError instead of a hang.
package cluster

import (
	"errors"
	"fmt"
)

// MigratePass names the data-moving passes of a migration.
type MigratePass int

const (
	// PassCopy bulk-copies every moving shard to its new replicas.
	PassCopy MigratePass = iota
	// PassCatchup re-ships the suffix ingested while the copy ran.
	PassCatchup
	// PassVerify streams shard checksums for destination-side comparison.
	PassVerify
	// PassCommit is not a data pass: it names the final phase boundary,
	// where the hook runs one last time before the verdict is reduced and
	// the caller flips the epoch.
	PassCommit
	numPasses = PassCommit
)

func (p MigratePass) String() string {
	switch p {
	case PassCopy:
		return "copy"
	case PassCatchup:
		return "catchup"
	case PassVerify:
		return "verify"
	case PassCommit:
		return "commit"
	}
	return fmt.Sprintf("pass(%d)", int(p))
}

// MigratePeer is one node's role in a migration. The engine calls Ship
// and Receive concurrently (shipper and receiver goroutines of the same
// pass), so implementations must synchronize state they share between
// the two.
type MigratePeer interface {
	// Ship produces this node's outbound payloads for the pass, calling
	// emit for each. emit delivers to the peer on node dest (dest may be
	// this node). Ship returning an error fails the migration.
	Ship(pass MigratePass, emit func(dest NodeID, payload []byte) error) error
	// Receive handles one payload addressed to this node.
	Receive(pass MigratePass, from NodeID, payload []byte) error
	// PassDone runs after the node has shipped and received everything in
	// the pass and before the next phase gate — the place to make
	// received state durable (checkpoint + flush).
	PassDone(pass MigratePass) error
	// Verdict reports, after PassVerify, whether every shard this node
	// received checks out.
	Verdict() (ok bool, detail string)
}

// ErrMigrationAborted reports a migration stopped at a phase boundary by
// the caller's hook (or a peer's veto) with no epoch change.
var ErrMigrationAborted = errors.New("cluster: migration aborted at phase boundary")

// ErrMigrationVerify reports a destination-side checksum mismatch.
var ErrMigrationVerify = errors.New("cluster: migration verify failed")

// MigrateOptions tunes RunMigration.
type MigrateOptions struct {
	// Participants is the ascending node set taking part (sources,
	// destinations, and any node that must agree on the epoch flip). Nil
	// means every fabric node.
	Participants []NodeID
	// Hook, when non-nil, runs on the coordinator before each pass and
	// once more at the PassCommit boundary, before the verify verdict is
	// reduced. An error aborts the migration cleanly: every
	// participant returns ErrMigrationAborted and no pass beyond the
	// boundary runs.
	Hook func(pass MigratePass) error
}

// Migration frame layout on the data channel: kind, pass, payload.
const (
	frameData = byte(iota)
	frameEOS
)

// RunMigration drives the three passes across opt.Participants, using
// peer(n) as node n's role. It returns nil only when every pass
// completed everywhere and every destination's verify verdict is clean.
// On any failure the caller still owns the routing state: nothing here
// touches placement, so the old epoch stays authoritative.
func RunMigration(f Fabric, peer func(n NodeID) MigratePeer, opt MigrateOptions) error {
	parts := opt.Participants
	if parts == nil {
		parts = make([]NodeID, f.Nodes())
		for i := range parts {
			parts[i] = NodeID(i)
		}
	}
	if len(parts) == 0 {
		return fmt.Errorf("cluster: migration needs at least one participant")
	}
	for i, n := range parts {
		if err := Validate(n, f.Nodes()); err != nil {
			return err
		}
		if i > 0 && n <= parts[i-1] {
			return fmt.Errorf("cluster: migration participants not ascending at %d", n)
		}
	}
	ns, err := Namespaces().Lease()
	if err != nil {
		return err
	}
	defer ns.DrainAndRelease(f)
	chData, chUp, chDn := ns.Channel(0), ns.Channel(1), ns.Channel(2)
	coordinator := parts[0]

	return RunOn(f, parts, func(ep Endpoint) error {
		p := peer(ep.ID())
		coll := NewCollective(ep, chUp, chDn).WithParticipants(parts)
		for pass := PassCopy; pass <= numPasses; pass++ {
			// Phase gate: the coordinator's hook result is folded into an
			// all-reduce, so every node learns about an abort at the same
			// boundary and none starts the next pass.
			vote := int64(1)
			if ep.ID() == coordinator && opt.Hook != nil {
				if err := opt.Hook(pass); err != nil {
					vote = 0
				}
			}
			cont, err := coll.AllReduceMin(vote)
			if err != nil {
				return fmt.Errorf("cluster: migration %s gate on node %d: %w", pass, ep.ID(), err)
			}
			if cont == 0 {
				return fmt.Errorf("%w (before %s)", ErrMigrationAborted, pass)
			}
			if pass == numPasses {
				break
			}
			if err := runPass(ep, p, pass, parts, chData); err != nil {
				return err
			}
			if err := p.PassDone(pass); err != nil {
				return fmt.Errorf("cluster: migration %s finalize on node %d: %w", pass, ep.ID(), err)
			}
		}
		ok, detail := p.Verdict()
		vote := int64(1)
		if !ok {
			vote = 0
		}
		global, err := coll.AllReduceMin(vote)
		if err != nil {
			return fmt.Errorf("cluster: migration verdict on node %d: %w", ep.ID(), err)
		}
		if global == 0 {
			if !ok {
				return fmt.Errorf("%w on node %d: %s", ErrMigrationVerify, ep.ID(), detail)
			}
			return ErrMigrationVerify
		}
		return nil
	})
}

// runPass runs one pass on one node: a shipper goroutine emitting this
// node's outbound frames (ending with an EOS to every other participant)
// and a receiver loop that applies inbound frames until it has seen EOS
// from every other participant. Per-(sender, channel) FIFO delivery —
// guaranteed by both the in-process and the reliable fabric — makes the
// trailing EOS a correct end-of-stream marker.
func runPass(ep Endpoint, p MigratePeer, pass MigratePass, parts []NodeID, chData ChannelID) error {
	self := ep.ID()
	shipErr := make(chan error, 1)
	go func() {
		shipErr <- func() error {
			emit := func(dest NodeID, payload []byte) error {
				if dest == self {
					// A node can be source and destination at once; local
					// payloads skip the fabric.
					return p.Receive(pass, self, payload)
				}
				frame := make([]byte, 0, 2+len(payload))
				frame = append(frame, frameData, byte(pass))
				frame = append(frame, payload...)
				return ep.Send(dest, chData, frame)
			}
			if err := p.Ship(pass, emit); err != nil {
				return fmt.Errorf("cluster: migration %s ship on node %d: %w", pass, self, err)
			}
			for _, n := range parts {
				if n == self {
					continue
				}
				if err := ep.Send(n, chData, []byte{frameEOS, byte(pass)}); err != nil {
					return fmt.Errorf("cluster: migration %s eos %d->%d: %w", pass, self, n, err)
				}
			}
			return nil
		}()
	}()

	var recvErr error
	for eos := 0; eos < len(parts)-1; {
		msg, err := ep.Recv(chData)
		if err != nil {
			recvErr = fmt.Errorf("cluster: migration %s recv on node %d: %w", pass, self, err)
			break
		}
		if len(msg.Payload) < 2 || MigratePass(msg.Payload[1]) != pass {
			recvErr = fmt.Errorf("cluster: migration %s recv on node %d: bad frame from %d", pass, self, msg.From)
			break
		}
		switch msg.Payload[0] {
		case frameEOS:
			eos++
		case frameData:
			if err := p.Receive(pass, msg.From, msg.Payload[2:]); err != nil {
				recvErr = fmt.Errorf("cluster: migration %s apply on node %d: %w", pass, self, err)
			}
		default:
			recvErr = fmt.Errorf("cluster: migration %s recv on node %d: unknown frame kind %d", pass, self, msg.Payload[0])
		}
		if recvErr != nil {
			break
		}
	}
	return errors.Join(<-shipErr, recvErr)
}
