package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// NodeDownError is the concrete error behind ErrNodeDown: it names the
// peer that failed so failover machinery can exclude exactly that node
// from the next attempt instead of guessing from message text. It
// unwraps to ErrNodeDown, so errors.Is(err, ErrNodeDown) keeps working
// everywhere.
type NodeDownError struct {
	Node   NodeID
	Reason string
}

func (e *NodeDownError) Error() string {
	return fmt.Sprintf("%v: node %d %s", ErrNodeDown, e.Node, e.Reason)
}

func (e *NodeDownError) Unwrap() error { return ErrNodeDown }

// DownNodes walks an error tree (including errors.Join combinations and
// fmt %w chains) and returns the distinct node IDs named by any
// NodeDownError inside it, ascending. A nil or down-free error yields
// nil.
func DownNodes(err error) []NodeID {
	seen := make(map[NodeID]struct{})
	var walk func(error)
	walk = func(err error) {
		if err == nil {
			return
		}
		var nd *NodeDownError
		if errors.As(err, &nd) {
			seen[nd.Node] = struct{}{}
		}
		// errors.As stops at the first match along one branch; keep
		// walking every branch so joined multi-node failures report all
		// of their casualties.
		switch x := err.(type) {
		case interface{ Unwrap() []error }:
			for _, sub := range x.Unwrap() {
				walk(sub)
			}
		case interface{ Unwrap() error }:
			walk(x.Unwrap())
		}
	}
	walk(err)
	if len(seen) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HealthView is a point-in-time liveness oracle over the fabric's nodes.
// Implementations must be safe for concurrent use; Alive may be called
// on every fringe route decision.
type HealthView interface {
	// Alive reports whether node n is currently believed reachable.
	Alive(n NodeID) bool
}

// HealthReporter is implemented by fabrics that maintain a liveness view
// (the reliable fabric, from its heartbeats). Fabrics without failure
// detection simply don't implement it and every node is presumed alive.
type HealthReporter interface {
	Health() HealthView
}

// LiveNodes evaluates h over nodes [0, n) and returns the ascending list
// of nodes it considers alive. A nil view means no failure detector:
// every node is returned.
func LiveNodes(h HealthView, n int) []NodeID {
	out := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if h == nil || h.Alive(NodeID(i)) {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Health returns the reliable fabric's heartbeat-fed liveness view.
//
// A node is declared dead when a majority of the *other* live observers
// have exceeded their heartbeat budget for it, or when its own protocol
// engine recorded a terminal failure (its process crashed). Majority
// voting keeps one partitioned or flapping observer from taking a
// healthy peer out of the query path; the self-failure check covers the
// n=2 case where a dead peer's stale suspicions would otherwise count.
func (f *reliableFabric) Health() HealthView { return rlHealth{f} }

type rlHealth struct{ f *reliableFabric }

func (h rlHealth) Alive(n NodeID) bool {
	if int(n) < 0 || int(n) >= len(h.f.endpoints) {
		return false
	}
	// The node's own engine hitting a terminal error (other than fabric
	// close) is authoritative: it cannot serve queries.
	if p := h.f.endpoints[n].termErr.Load(); p != nil && !errors.Is(*p, ErrClosed) {
		return false
	}
	votes, voters := 0, 0
	for i, ep := range h.f.endpoints {
		if NodeID(i) == n {
			continue
		}
		// A dead observer's monitor eventually suspects everyone; its
		// votes would convict healthy nodes, so only live observers count.
		if p := ep.termErr.Load(); p != nil && !errors.Is(*p, ErrClosed) {
			continue
		}
		voters++
		if ep.down[n].Load() {
			votes++
		}
	}
	return voters == 0 || votes*2 <= voters
}
