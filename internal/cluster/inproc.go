package cluster

import (
	"context"
	"sync"
	"time"
)

// inprocFabric connects N in-process nodes with per-(node, channel)
// mailboxes. It is the default fabric for experiments: message counts,
// sizes and ordering match a real deployment while everything runs in one
// process.
type inprocFabric struct {
	size      int
	endpoints []*inprocEndpoint

	mu     sync.Mutex
	closed bool
}

// NewInProc creates an in-process fabric with `size` nodes. By default
// (buffer <= 0) sends never block — the paper's algorithms assume
// non-blocking small-message sends ("sending a small message from one
// DataCutter filter to another filter is a non-blocking operation",
// §4.2), and a bounded mailbox would deadlock the pipelined BFS when a
// hub's expansion floods its peers faster than they poll. A positive
// buffer bounds each mailbox and applies sender back-pressure instead.
func NewInProc(size, buffer int) Fabric {
	if size < 1 {
		panic("cluster: fabric needs at least one node")
	}
	f := &inprocFabric{size: size}
	for i := 0; i < size; i++ {
		f.endpoints = append(f.endpoints, &inprocEndpoint{
			fabric: f,
			id:     NodeID(i),
			buffer: buffer,
			boxes:  make(map[ChannelID]*mailbox),
		})
	}
	return f
}

func (f *inprocFabric) Nodes() int { return f.size }

func (f *inprocFabric) Endpoint(n NodeID) Endpoint {
	if err := Validate(n, f.size); err != nil {
		panic(err)
	}
	return f.endpoints[n]
}

func (f *inprocFabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	for _, ep := range f.endpoints {
		ep.close()
	}
	return nil
}

func (f *inprocFabric) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// mailbox is a bounded FIFO with close semantics. A plain Go channel
// almost works, but we need "close wakes blocked receivers with an error
// while senders see ErrClosed too", which is simpler with a condition
// variable.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	limit  int
	closed bool
}

func newMailbox(limit int) *mailbox {
	m := &mailbox{limit: limit}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg Message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.limit > 0 && len(m.queue) >= m.limit && !m.closed {
		m.cond.Wait()
	}
	if m.closed {
		return ErrClosed
	}
	m.queue = append(m.queue, msg)
	m.cond.Broadcast()
	return nil
}

func (m *mailbox) get() (Message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return Message{}, ErrClosed
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	m.cond.Broadcast()
	return msg, nil
}

// getCtx waits for a message or for ctx to be cancelled. A queued
// message is preferred over a cancellation that races with it.
func (m *mailbox) getCtx(ctx context.Context) (Message, error) {
	if ctx.Done() == nil {
		// Uncancellable context (Background/TODO): skip the AfterFunc
		// machinery entirely so the single-query hot path pays nothing.
		return m.get()
	}
	// A cancellation must wake the cond.Wait below; AfterFunc gives us
	// that without a polling loop.
	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed && ctx.Err() == nil {
		m.cond.Wait()
	}
	if len(m.queue) > 0 {
		msg := m.queue[0]
		m.queue = m.queue[1:]
		m.cond.Broadcast()
		return msg, nil
	}
	if m.closed {
		return Message{}, ErrClosed
	}
	return Message{}, ctx.Err()
}

// getWithin waits up to d for a message. ok=false with a nil error means
// the wait timed out with the queue still empty.
func (m *mailbox) getWithin(d time.Duration) (Message, bool, error) {
	deadline := time.Now().Add(d)
	timer := time.AfterFunc(d, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer timer.Stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed && time.Now().Before(deadline) {
		m.cond.Wait()
	}
	if len(m.queue) > 0 {
		msg := m.queue[0]
		m.queue = m.queue[1:]
		m.cond.Broadcast()
		return msg, true, nil
	}
	if m.closed {
		return Message{}, false, ErrClosed
	}
	return Message{}, false, nil
}

func (m *mailbox) tryGet() (Message, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) > 0 {
		msg := m.queue[0]
		m.queue = m.queue[1:]
		m.cond.Broadcast()
		return msg, true, nil
	}
	if m.closed {
		return Message{}, false, ErrClosed
	}
	return Message{}, false, nil
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	// Drop queued messages: the Fabric contract is that every receive
	// after Close fails with ErrClosed, not that leftovers drain first.
	m.queue = nil
	m.cond.Broadcast()
	m.mu.Unlock()
}

type inprocEndpoint struct {
	fabric *inprocFabric
	id     NodeID
	buffer int

	mu    sync.Mutex
	boxes map[ChannelID]*mailbox
}

func (e *inprocEndpoint) box(ch ChannelID) *mailbox {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.boxes[ch]
	if !ok {
		b = newMailbox(e.buffer)
		if e.fabric.isClosed() {
			b.close()
		}
		e.boxes[ch] = b
	}
	return b
}

func (e *inprocEndpoint) close() {
	e.mu.Lock()
	boxes := make([]*mailbox, 0, len(e.boxes))
	for _, b := range e.boxes {
		boxes = append(boxes, b)
	}
	e.mu.Unlock()
	for _, b := range boxes {
		b.close()
	}
}

func (e *inprocEndpoint) ID() NodeID { return e.id }

func (e *inprocEndpoint) Nodes() int { return e.fabric.size }

func (e *inprocEndpoint) Send(to NodeID, ch ChannelID, payload []byte) error {
	if err := Validate(to, e.fabric.size); err != nil {
		return err
	}
	if e.fabric.isClosed() {
		return ErrClosed
	}
	dst := e.fabric.endpoints[to]
	return dst.box(ch).put(Message{From: e.id, Channel: ch, Payload: payload})
}

func (e *inprocEndpoint) Broadcast(ch ChannelID, payload []byte) error {
	for n := 0; n < e.fabric.size; n++ {
		if NodeID(n) == e.id {
			continue
		}
		// Each destination gets its own copy: mailboxes own payloads.
		p := make([]byte, len(payload))
		copy(p, payload)
		if err := e.Send(NodeID(n), ch, p); err != nil {
			return err
		}
	}
	return nil
}

func (e *inprocEndpoint) Recv(ch ChannelID) (Message, error) {
	return e.box(ch).get()
}

func (e *inprocEndpoint) RecvCtx(ctx context.Context, ch ChannelID) (Message, error) {
	return e.box(ch).getCtx(ctx)
}

func (e *inprocEndpoint) TryRecv(ch ChannelID) (Message, bool, error) {
	return e.box(ch).tryGet()
}
