package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// kvPeer is a toy MigratePeer: each node owns a set of keys and the
// migration moves a chosen subset to a destination. Payloads are single
// bytes; verify ships the expected count.
type kvPeer struct {
	self  NodeID
	moves map[byte]NodeID // key -> destination (source side)

	mu       sync.Mutex
	got      map[byte]bool
	catchup  []byte // keys that appear only in the catch-up pass
	expected map[NodeID]int
	bad      string
	passes   []MigratePass
}

func newKVPeer(self NodeID, moves map[byte]NodeID) *kvPeer {
	return &kvPeer{self: self, moves: moves, got: make(map[byte]bool), expected: make(map[NodeID]int)}
}

func (p *kvPeer) Ship(pass MigratePass, emit func(NodeID, []byte) error) error {
	switch pass {
	case PassCopy:
		for k, dest := range p.moves {
			if err := emit(dest, []byte{k}); err != nil {
				return err
			}
		}
	case PassCatchup:
		p.mu.Lock()
		extra := append([]byte(nil), p.catchup...)
		p.mu.Unlock()
		for _, k := range extra {
			if err := emit(p.moves[k], []byte{k}); err != nil {
				return err
			}
		}
	case PassVerify:
		counts := make(map[NodeID]int)
		for _, dest := range p.moves {
			counts[dest]++
		}
		for dest, n := range counts {
			if err := emit(dest, []byte{byte(n)}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *kvPeer) Receive(pass MigratePass, from NodeID, payload []byte) error {
	if len(payload) != 1 {
		return fmt.Errorf("bad payload %x", payload)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if pass == PassVerify {
		p.expected[from] += int(payload[0])
		return nil
	}
	p.got[payload[0]] = true
	return nil
}

func (p *kvPeer) PassDone(pass MigratePass) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.passes = append(p.passes, pass)
	return nil
}

func (p *kvPeer) Verdict() (bool, string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	want := 0
	for _, n := range p.expected {
		want += n
	}
	if p.bad != "" {
		return false, p.bad
	}
	if want != len(p.got) {
		return false, fmt.Sprintf("node %d holds %d keys, verify promised %d", p.self, len(p.got), want)
	}
	return true, ""
}

func TestRunMigrationMovesAndVerifies(t *testing.T) {
	f := NewInProc(4, 0)
	defer f.Close()
	peers := map[NodeID]*kvPeer{
		0: newKVPeer(0, map[byte]NodeID{'a': 2, 'b': 3}),
		1: newKVPeer(1, map[byte]NodeID{'c': 3, 'z': 1}), // 'z' moves to itself
		2: newKVPeer(2, nil),
		3: newKVPeer(3, nil),
	}
	// 'd' shows up between copy and catch-up, as if ingested mid-copy.
	hooked := false
	err := RunMigration(f, func(n NodeID) MigratePeer { return peers[n] }, MigrateOptions{
		Hook: func(pass MigratePass) error {
			if pass == PassCatchup && !hooked {
				hooked = true
				p := peers[0]
				p.mu.Lock()
				p.moves['d'] = 2
				p.catchup = append(p.catchup, 'd')
				p.mu.Unlock()
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("RunMigration: %v", err)
	}
	for _, want := range []struct {
		node NodeID
		keys string
	}{{2, "ad"}, {3, "bc"}, {1, "z"}} {
		p := peers[want.node]
		for i := 0; i < len(want.keys); i++ {
			if !p.got[want.keys[i]] {
				t.Errorf("node %d missing key %q (has %v)", want.node, want.keys[i], p.got)
			}
		}
	}
	for n, p := range peers {
		if len(p.passes) != 3 {
			t.Errorf("node %d finalized %v, want all three passes", n, p.passes)
		}
	}
}

func TestRunMigrationHookAborts(t *testing.T) {
	f := NewInProc(3, 0)
	defer f.Close()
	peers := map[NodeID]*kvPeer{
		0: newKVPeer(0, map[byte]NodeID{'a': 1}),
		1: newKVPeer(1, nil),
		2: newKVPeer(2, nil),
	}
	err := RunMigration(f, func(n NodeID) MigratePeer { return peers[n] }, MigrateOptions{
		Hook: func(pass MigratePass) error {
			if pass == PassCatchup {
				return fmt.Errorf("chaos: coordinator vetoes")
			}
			return nil
		},
	})
	if !errors.Is(err, ErrMigrationAborted) {
		t.Fatalf("err = %v, want ErrMigrationAborted", err)
	}
	// The abort hit after copy: no node may have run catch-up or verify.
	for n, p := range peers {
		for _, pass := range p.passes {
			if pass != PassCopy {
				t.Errorf("node %d ran %s after the abort boundary", n, pass)
			}
		}
	}
}

func TestRunMigrationVerifyFailure(t *testing.T) {
	f := NewInProc(2, 0)
	defer f.Close()
	peers := map[NodeID]*kvPeer{
		0: newKVPeer(0, map[byte]NodeID{'a': 1}),
		1: newKVPeer(1, nil),
	}
	peers[1].bad = "injected checksum mismatch"
	err := RunMigration(f, func(n NodeID) MigratePeer { return peers[n] }, MigrateOptions{})
	if !errors.Is(err, ErrMigrationVerify) {
		t.Fatalf("err = %v, want ErrMigrationVerify", err)
	}
}

func TestRunMigrationSubsetParticipants(t *testing.T) {
	f := NewInProc(5, 0)
	defer f.Close()
	peers := map[NodeID]*kvPeer{
		1: newKVPeer(1, map[byte]NodeID{'x': 4}),
		4: newKVPeer(4, nil),
	}
	err := RunMigration(f, func(n NodeID) MigratePeer { return peers[n] }, MigrateOptions{
		Participants: []NodeID{1, 4},
	})
	if err != nil {
		t.Fatalf("RunMigration: %v", err)
	}
	if !peers[4].got['x'] {
		t.Fatal("key did not move to node 4")
	}
}

func TestKillCrashesNodeOnDemand(t *testing.T) {
	inner := NewInProc(3, 0)
	faulty := NewFaulty(inner, Plan{Seed: 1})
	rel := NewReliable(faulty, ReliableOptions{})
	defer rel.Close()
	if !Kill(rel, 2) {
		t.Fatal("Kill did not find the fault layer through the reliable wrapper")
	}
	if err := rel.Endpoint(2).Send(0, 5, []byte{1}); err == nil {
		t.Fatal("killed node can still send")
	}
}
