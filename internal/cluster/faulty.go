package cluster

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mssg/internal/obs"
)

// Plan scripts deterministic fault injection for a faulty fabric. Every
// per-message decision (drop, duplicate, corrupt, delay, injected send
// error) is derived from a hash of (Seed, from, to, channel, message
// index on that triple), so a given plan perturbs the same messages on
// every run regardless of goroutine interleaving. Probabilities are
// independent fractions in [0,1]; the drop/duplicate/corrupt/delay roll
// is exclusive (at most one of them fires per message).
type Plan struct {
	// Seed drives every pseudo-random decision.
	Seed int64
	// DropProb is the fraction of remote messages silently discarded.
	DropProb float64
	// DupProb is the fraction of remote messages delivered twice.
	DupProb float64
	// CorruptProb is the fraction of remote messages with one payload
	// byte flipped in transit.
	CorruptProb float64
	// DelayProb is the fraction of remote messages delivered late (and
	// therefore possibly reordered past later sends).
	DelayProb float64
	// MaxDelay bounds injected delays; <= 0 means 2ms.
	MaxDelay time.Duration
	// SendErrProb is the fraction of remote sends that return an
	// ErrTimeout-wrapped injected error to the caller even though the
	// message WAS handed to the transport — the classic ambiguous
	// failure that forces idempotent retry protocols.
	SendErrProb float64
	// Crashes stops individual nodes on a scripted schedule.
	Crashes []Crash
}

// Crash stops one node: once the node has attempted AfterSends outgoing
// messages (application sends plus any protocol traffic such as acks and
// heartbeats), all of its endpoint operations fail with ErrNodeDown and
// messages addressed to it vanish, exactly as if the process had died.
type Crash struct {
	Node       NodeID
	AfterSends int64
}

func (p *Plan) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Millisecond
	}
	return p.MaxDelay
}

// faultyFabric wraps an inner fabric and perturbs its traffic according
// to a Plan. Local (self) delivery is exempt: it models an in-process
// queue operation, not a network hop.
type faultyFabric struct {
	inner     Fabric
	plan      Plan
	endpoints []*faultyEndpoint

	// Injection accounting: per-channel groups plus per-kind totals, so
	// a chaos run can report exactly what the plan actually perturbed.
	met          *fabricMetrics
	mDrops       *obs.Counter
	mDups        *obs.Counter
	mCorruptions *obs.Counter
	mDelays      *obs.Counter
	mSendErrs    *obs.Counter
	mCrashes     *obs.Counter

	mu     sync.Mutex
	closed bool
}

// NewFaulty wraps inner with scripted fault injection. Closing the
// returned fabric closes inner too.
func NewFaulty(inner Fabric, plan Plan) Fabric {
	reg := obs.Default()
	f := &faultyFabric{
		inner: inner, plan: plan,
		met:          newFabricMetrics("cluster.faulty"),
		mDrops:       reg.Counter("cluster.faulty.drops"),
		mDups:        reg.Counter("cluster.faulty.dups"),
		mCorruptions: reg.Counter("cluster.faulty.corruptions"),
		mDelays:      reg.Counter("cluster.faulty.delays"),
		mSendErrs:    reg.Counter("cluster.faulty.send_errors"),
		mCrashes:     reg.Counter("cluster.faulty.crashes"),
	}
	for i := 0; i < inner.Nodes(); i++ {
		ep := &faultyEndpoint{
			fabric:     f,
			inner:      inner.Endpoint(NodeID(i)),
			crashAfter: -1,
			seqs:       make(map[pairKey]uint64),
		}
		ep.crashCtx, ep.crashCancel = context.WithCancel(context.Background())
		for _, c := range plan.Crashes {
			if c.Node == NodeID(i) {
				ep.crashAfter = c.AfterSends
			}
		}
		f.endpoints = append(f.endpoints, ep)
	}
	return f
}

func (f *faultyFabric) Nodes() int { return f.inner.Nodes() }

func (f *faultyFabric) Endpoint(n NodeID) Endpoint {
	if err := Validate(n, f.inner.Nodes()); err != nil {
		panic(err)
	}
	return f.endpoints[n]
}

func (f *faultyFabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	return f.inner.Close()
}

func (f *faultyFabric) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// NodeKiller is implemented by fabrics that can crash a node on demand —
// the chaos suites' way of killing a migration participant at an exact
// phase boundary rather than after a counted number of sends.
type NodeKiller interface {
	Kill(n NodeID)
}

// Kill crashes node n immediately: its future sends fail, sends to it
// vanish, and its pending receives drain with a NodeDownError, exactly
// as if a planned crash had just triggered.
func (f *faultyFabric) Kill(n NodeID) {
	if err := Validate(n, f.inner.Nodes()); err != nil {
		panic(err)
	}
	f.endpoints[n].crash()
}

// Kill forwards to the first NodeKiller in f's wrapper chain (the
// reliable fabric exposes its inner fabric via Unwrap). It reports
// whether a killer was found.
func Kill(f Fabric, n NodeID) bool {
	for f != nil {
		if k, ok := f.(NodeKiller); ok {
			k.Kill(n)
			return true
		}
		u, ok := f.(interface{ Unwrap() Fabric })
		if !ok {
			return false
		}
		f = u.Unwrap()
	}
	return false
}

// pairKey identifies one (destination/source, channel) message stream.
type pairKey struct {
	node NodeID
	ch   ChannelID
}

type faultyEndpoint struct {
	fabric     *faultyFabric
	inner      Endpoint
	crashAfter int64 // <0: this node never crashes
	sends      atomic.Int64
	crashed    atomic.Bool
	// crashCtx is cancelled the instant the node crashes, so receives
	// already blocked inside the inner fabric drain with the crash error
	// instead of waiting forever for traffic that will never arrive — a
	// dead process's pending reads fail, they don't hang. Layers above
	// (the reliable pump) rely on that to record the node's terminal
	// state and stop counting its stale liveness votes.
	crashCtx    context.Context
	crashCancel context.CancelFunc

	mu   sync.Mutex
	seqs map[pairKey]uint64
}

// crash marks the node dead and wakes its blocked receives.
func (e *faultyEndpoint) crash() {
	if !e.crashed.Swap(true) {
		e.fabric.mCrashes.Inc()
		obs.DefaultTracer().Emit("fault.crash", map[string]string{
			"node": strconv.Itoa(int(e.inner.ID())),
		})
	}
	e.crashCancel()
}

func (e *faultyEndpoint) ID() NodeID { return e.inner.ID() }
func (e *faultyEndpoint) Nodes() int { return e.inner.Nodes() }

func (e *faultyEndpoint) errCrashed() error {
	return &NodeDownError{Node: e.inner.ID(), Reason: "crashed by fault plan"}
}

// mix is the splitmix64 finalizer — a cheap avalanche hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func frac(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// rolls derives this message's fault decisions from the plan seed and
// the message's coordinates. h2/h3 feed corruption position and delay.
func (e *faultyEndpoint) rolls(to NodeID, ch ChannelID) (u, v float64, h2, h3 uint64) {
	k := pairKey{to, ch}
	e.mu.Lock()
	n := e.seqs[k]
	e.seqs[k] = n + 1
	e.mu.Unlock()
	base := mix(uint64(e.fabric.plan.Seed)) ^
		mix(uint64(e.inner.ID())<<42|uint64(to)<<21|uint64(ch))
	h1 := mix(base ^ (n+1)*0x9e3779b97f4a7c15)
	h2 = mix(h1)
	h3 = mix(h2)
	return frac(h1), frac(mix(h3)), h2, h3
}

func (e *faultyEndpoint) Send(to NodeID, ch ChannelID, payload []byte) error {
	if e.fabric.isClosed() {
		return ErrClosed
	}
	if err := Validate(to, e.inner.Nodes()); err != nil {
		return err
	}
	n := e.sends.Add(1)
	if e.crashAfter >= 0 && n > e.crashAfter {
		e.crash()
	}
	if e.crashed.Load() {
		return e.errCrashed()
	}
	if to == e.inner.ID() {
		return e.inner.Send(to, ch, payload)
	}
	dst := e.fabric.endpoints[to]
	if dst.crashed.Load() {
		// A send to a dead node vanishes without a local error, like a
		// datagram to a dead host.
		return nil
	}

	p := &e.fabric.plan
	cm := e.fabric.met.channel(ch)
	cm.sends.Inc()
	cm.sendBytes.Add(int64(len(payload)))
	u, v, h2, h3 := e.rolls(to, ch)
	var injected error
	if v < p.SendErrProb {
		e.fabric.mSendErrs.Inc()
		cm.injected.Inc()
		injected = fmt.Errorf("%w: injected send failure %d->%d",
			ErrTimeout, e.inner.ID(), to)
	}

	cut := p.DropProb
	switch {
	case u < cut:
		// Dropped in transit.
		e.fabric.mDrops.Inc()
		cm.drops.Inc()
	case u < cut+p.DupProb:
		e.fabric.mDups.Inc()
		cm.injected.Inc()
		c := make([]byte, len(payload))
		copy(c, payload)
		if err := e.inner.Send(to, ch, c); err != nil {
			return err
		}
		if err := e.inner.Send(to, ch, payload); err != nil {
			return err
		}
	case u < cut+p.DupProb+p.CorruptProb && len(payload) > 0:
		e.fabric.mCorruptions.Inc()
		cm.injected.Inc()
		c := make([]byte, len(payload))
		copy(c, payload)
		c[h2%uint64(len(c))] ^= byte(1 + h3%255)
		if err := e.inner.Send(to, ch, c); err != nil {
			return err
		}
	case u < cut+p.DupProb+p.CorruptProb+p.DelayProb:
		e.fabric.mDelays.Inc()
		cm.injected.Inc()
		d := time.Duration(frac(h3) * float64(p.maxDelay()))
		time.AfterFunc(d, func() {
			if e.fabric.isClosed() || dst.crashed.Load() {
				return
			}
			_ = e.inner.Send(to, ch, payload) // best effort, like the wire
		})
	default:
		if err := e.inner.Send(to, ch, payload); err != nil {
			return err
		}
	}
	return injected
}

func (e *faultyEndpoint) Broadcast(ch ChannelID, payload []byte) error {
	for n := 0; n < e.inner.Nodes(); n++ {
		if NodeID(n) == e.inner.ID() {
			continue
		}
		c := make([]byte, len(payload))
		copy(c, payload)
		if err := e.Send(NodeID(n), ch, c); err != nil {
			return err
		}
	}
	return nil
}

func (e *faultyEndpoint) Recv(ch ChannelID) (Message, error) {
	msg, err := e.inner.RecvCtx(e.crashCtx, ch)
	if e.crashed.Load() {
		return Message{}, e.errCrashed()
	}
	return msg, err
}

func (e *faultyEndpoint) RecvCtx(ctx context.Context, ch ChannelID) (Message, error) {
	if e.crashed.Load() {
		return Message{}, e.errCrashed()
	}
	// Merge the caller's context with the crash signal so a kill also
	// drains receives that are blocked under the caller's (still live)
	// context.
	mctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(e.crashCtx, cancel)
	defer stop()
	msg, err := e.inner.RecvCtx(mctx, ch)
	if e.crashed.Load() {
		return Message{}, e.errCrashed()
	}
	return msg, err
}

func (e *faultyEndpoint) TryRecv(ch ChannelID) (Message, bool, error) {
	if e.crashed.Load() {
		return Message{}, false, e.errCrashed()
	}
	return e.inner.TryRecv(ch)
}
