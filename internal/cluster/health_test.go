package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// muteFabric silences one node — frames to or from it vanish while muted
// — without crashing it, modeling a flapping link or a long GC pause
// rather than a process death.
type muteFabric struct {
	Fabric
	node  NodeID
	muted atomic.Bool
}

func (f *muteFabric) Endpoint(n NodeID) Endpoint {
	return &muteEndpoint{Endpoint: f.Fabric.Endpoint(n), f: f}
}

type muteEndpoint struct {
	Endpoint
	f *muteFabric
}

func (e *muteEndpoint) Send(to NodeID, ch ChannelID, payload []byte) error {
	if e.f.muted.Load() && (to == e.f.node || e.Endpoint.ID() == e.f.node) {
		return nil // dropped on the floor, sender none the wiser
	}
	return e.Endpoint.Send(to, ch, payload)
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReliableRejoinAfterFlap is the heartbeat-flapping regression test:
// a node that goes silent past the heartbeat budget is declared down,
// but once it resumes answering it must rejoin the health view and carry
// traffic again — down declarations are no longer sticky.
func TestReliableRejoinAfterFlap(t *testing.T) {
	inner := &muteFabric{Fabric: NewInProc(2, 0), node: 1}
	f := NewReliable(inner, ReliableOptions{
		RetransmitInitial: 2 * time.Millisecond,
		RetransmitMax:     20 * time.Millisecond,
		SendTimeout:       5 * time.Second,
		HeartbeatEvery:    10 * time.Millisecond,
		HeartbeatBudget:   60 * time.Millisecond,
		RejoinGrace:       30 * time.Millisecond,
	})
	defer f.Close()
	view := f.(HealthReporter).Health()

	if !view.Alive(1) {
		t.Fatal("node 1 reported dead before any fault")
	}
	inner.muted.Store(true)
	waitFor(t, 5*time.Second, "node 1 declared down", func() bool { return !view.Alive(1) })

	inner.muted.Store(false)
	waitFor(t, 5*time.Second, "node 1 rejoining", func() bool { return view.Alive(1) })

	// The readmitted peer must actually carry traffic again.
	got := make(chan error, 1)
	go func() {
		msg, err := f.Endpoint(1).Recv(7)
		if err == nil && string(msg.Payload) != "hello-again" {
			err = fmt.Errorf("payload = %q", msg.Payload)
		}
		got <- err
	}()
	waitFor(t, 5*time.Second, "post-rejoin send accepted", func() bool {
		return f.Endpoint(0).Send(1, 7, []byte("hello-again")) == nil
	})
	if err := <-got; err != nil {
		t.Fatalf("recv after rejoin: %v", err)
	}
}

// TestReliableStickyDownOptIn: RejoinGrace < 0 restores the old
// behavior for callers that want permanence.
func TestReliableStickyDownOptIn(t *testing.T) {
	inner := &muteFabric{Fabric: NewInProc(2, 0), node: 1}
	f := NewReliable(inner, ReliableOptions{
		RetransmitInitial: 2 * time.Millisecond,
		RetransmitMax:     20 * time.Millisecond,
		SendTimeout:       5 * time.Second,
		HeartbeatEvery:    10 * time.Millisecond,
		HeartbeatBudget:   60 * time.Millisecond,
		RejoinGrace:       -1,
	})
	defer f.Close()
	view := f.(HealthReporter).Health()

	inner.muted.Store(true)
	waitFor(t, 5*time.Second, "node 1 declared down", func() bool { return !view.Alive(1) })
	inner.muted.Store(false)
	time.Sleep(300 * time.Millisecond) // ample time to (wrongly) rejoin
	if view.Alive(1) {
		t.Fatal("node 1 rejoined despite RejoinGrace < 0")
	}
}

// TestHealthViewMajorityVote: one suspicious observer must not convict a
// healthy peer; a real crash must.
func TestHealthViewMajorityVote(t *testing.T) {
	f := NewReliable(NewInProc(4, 0), fastReliable())
	defer f.Close()
	rf := f.(*reliableFabric)
	view := f.(HealthReporter).Health()

	// A single observer's stale suspicion of node 2 is outvoted.
	rf.endpoints[0].down[2].Store(true)
	if !view.Alive(2) {
		t.Fatal("one suspicious observer convicted a healthy node")
	}
	// A majority of live observers convicts.
	rf.endpoints[1].down[2].Store(true)
	rf.endpoints[3].down[2].Store(true)
	if view.Alive(2) {
		t.Fatal("majority-suspected node still reported alive")
	}
	rf.endpoints[0].down[2].Store(false)
	rf.endpoints[1].down[2].Store(false)
	rf.endpoints[3].down[2].Store(false)

	// A terminal local failure is authoritative regardless of votes, and
	// strips the dead node of its own vote against others.
	crashErr := error(&NodeDownError{Node: 1, Reason: "crashed by fault plan"})
	rf.endpoints[1].termErr.Store(&crashErr)
	if view.Alive(1) {
		t.Fatal("terminally failed node reported alive")
	}
	rf.endpoints[1].down[0].Store(true)
	if !view.Alive(0) {
		t.Fatal("dead observer's vote counted against a healthy node")
	}
}

// TestDownNodes: the helper must find every distinct casualty in a
// joined, wrapped error tree.
func TestDownNodes(t *testing.T) {
	err := errors.Join(
		fmt.Errorf("node 2: %w", &NodeDownError{Node: 2, Reason: "exceeded its heartbeat budget"}),
		fmt.Errorf("node 0: %w", fmt.Errorf("inner: %w", &NodeDownError{Node: 0, Reason: "crashed by fault plan"})),
		errors.New("unrelated"),
		fmt.Errorf("node 3: %w", &NodeDownError{Node: 2, Reason: "duplicate report"}),
	)
	got := DownNodes(err)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("DownNodes = %v, want [0 2]", got)
	}
	if DownNodes(nil) != nil {
		t.Fatal("DownNodes(nil) != nil")
	}
	if DownNodes(errors.New("plain")) != nil {
		t.Fatal("DownNodes(plain) != nil")
	}
	if !errors.Is(errDown(1), ErrNodeDown) {
		t.Fatal("NodeDownError does not unwrap to ErrNodeDown")
	}
}
