package cluster

import (
	"errors"
	"fmt"
	"sync"

	"mssg/internal/obs"
)

// Per-query channel namespaces.
//
// The paper's Query Service executes one registered analysis at a time,
// so its reproduction could afford fixed channel constants (0x0100 for
// the BFS fringe, and so on). A serving system cannot: two queries on
// the same fabric would interleave their fringe chunks and done markers.
// A Namespace is a leased, disjoint block of ChannelIDs — the QueryID in
// the high bits, the query's logical channels (fringe, collectives,
// path-walk...) in the low bits — so any number of concurrent queries
// share one fabric without their traffic ever colliding.
//
// Lease/release is process-local: queries are driven from one process
// (cluster.Run spawns every node's goroutine), so the driver leases a
// namespace before the run and releases it after, and no distributed
// agreement is needed. IDs are recycled FIFO to keep a freshly released
// block cold for as long as possible.

// QueryID identifies one live channel-namespace lease.
type QueryID uint32

const (
	// nsBase is the bottom of the namespace region: far above the
	// DataCutter stream range (1<<16 + stream*copies) and below the
	// reliable layer's reserved control region (0xFFFFFF00).
	nsBase ChannelID = 1 << 30
	// NamespaceWidth is the number of channels in one namespace — the
	// maximum count of logical channels a single query may use.
	NamespaceWidth = 16
	// nsSlots bounds concurrently leased namespaces. Admission control
	// in the query engine keeps real concurrency far below this.
	nsSlots = 4096
)

// ErrNamespacesExhausted is returned by Lease when every slot is out.
var ErrNamespacesExhausted = errors.New("cluster: channel namespaces exhausted")

// Namespace is one leased block of channel IDs. It is valid until
// Release (or DrainAndRelease) is called, exactly once, by the query
// driver after every node goroutine of the query has returned.
type Namespace struct {
	alloc *NamespaceAllocator
	id    QueryID
	base  ChannelID
	width int

	mu       sync.Mutex
	released bool
}

// ID returns the lease's query identifier.
func (ns *Namespace) ID() QueryID { return ns.id }

// Channel maps a logical per-query channel index to its fabric-wide
// ChannelID. off must be in [0, width) of the allocator that leased this
// namespace (NamespaceWidth for the process-wide one).
func (ns *Namespace) Channel(off int) ChannelID {
	if off < 0 || off >= ns.width {
		panic(fmt.Sprintf("cluster: namespace channel %d outside [0,%d)", off, ns.width))
	}
	return ns.base + ChannelID(off)
}

// Release returns the namespace to its allocator. Idempotent. The caller
// must guarantee no goroutine still sends or receives on its channels.
func (ns *Namespace) Release() {
	ns.mu.Lock()
	already := ns.released
	ns.released = true
	ns.mu.Unlock()
	if already {
		return
	}
	ns.alloc.release(ns.id)
}

// DrainAndRelease discards any messages still queued on the namespace's
// channels at every endpoint of f, then releases the lease. A cancelled
// query can leave undelivered fringe chunks behind; draining keeps them
// from leaking into whichever future query re-leases this block. Safe
// only after every node goroutine of the query has returned (no sends in
// flight) — which cluster.Run guarantees once it returns.
func (ns *Namespace) DrainAndRelease(f Fabric) {
	for n := 0; n < f.Nodes(); n++ {
		ep := f.Endpoint(NodeID(n))
		for off := 0; off < ns.width; off++ {
			ch := ns.Channel(off)
			for {
				_, ok, err := ep.TryRecv(ch)
				if !ok || err != nil {
					break
				}
			}
		}
	}
	ns.Release()
}

// NamespaceAllocator hands out disjoint channel blocks. The zero value
// is not usable; construct with NewNamespaceAllocator or use the
// process-wide Namespaces allocator.
type NamespaceAllocator struct {
	base  ChannelID
	width int

	mu     sync.Mutex
	free   []uint32 // FIFO recycle queue
	leased int
}

// NewNamespaceAllocator returns an allocator of `slots` namespaces of
// `width` channels each, starting at base.
func NewNamespaceAllocator(base ChannelID, slots, width int) *NamespaceAllocator {
	if slots < 1 || width < 1 {
		panic("cluster: namespace allocator needs at least one slot and one channel")
	}
	a := &NamespaceAllocator{base: base, width: width, free: make([]uint32, slots)}
	for i := range a.free {
		a.free[i] = uint32(i)
	}
	return a
}

// Lease acquires one namespace, or ErrNamespacesExhausted.
func (a *NamespaceAllocator) Lease() (*Namespace, error) {
	a.mu.Lock()
	if len(a.free) == 0 {
		a.mu.Unlock()
		nsMetrics().exhausted.Inc()
		return nil, ErrNamespacesExhausted
	}
	id := a.free[0]
	a.free = a.free[1:]
	a.leased++
	a.mu.Unlock()
	m := nsMetrics()
	m.leases.Inc()
	m.leased.Add(1)
	return &Namespace{
		alloc: a,
		id:    QueryID(id),
		base:  a.base + ChannelID(id*uint32(a.width)),
		width: a.width,
	}, nil
}

// Leased reports the number of namespaces currently out.
func (a *NamespaceAllocator) Leased() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.leased
}

func (a *NamespaceAllocator) release(id QueryID) {
	a.mu.Lock()
	a.free = append(a.free, uint32(id))
	a.leased--
	a.mu.Unlock()
	m := nsMetrics()
	m.releases.Inc()
	m.leased.Add(-1)
}

var defaultNamespaces = NewNamespaceAllocator(nsBase, nsSlots, NamespaceWidth)

// Namespaces returns the process-wide allocator. Channel IDs it hands
// out are unique across the whole process, so queries on different
// fabrics may share it (a block simply goes unused on the other fabric).
func Namespaces() *NamespaceAllocator { return defaultNamespaces }

// namespaceMetrics is the pre-resolved metric set of the allocator.
type namespaceMetrics struct {
	leases    *obs.Counter // cluster.namespaces.leases
	releases  *obs.Counter // cluster.namespaces.releases
	exhausted *obs.Counter // cluster.namespaces.exhausted
	leased    *obs.Gauge   // cluster.namespaces.leased
}

var (
	nsMetOnce sync.Once
	nsMetVal  *namespaceMetrics
)

func nsMetrics() *namespaceMetrics {
	nsMetOnce.Do(func() {
		r := obs.Default()
		nsMetVal = &namespaceMetrics{
			leases:    r.Counter("cluster.namespaces.leases"),
			releases:  r.Counter("cluster.namespaces.releases"),
			exhausted: r.Counter("cluster.namespaces.exhausted"),
			leased:    r.Gauge("cluster.namespaces.leased"),
		}
	})
	return nsMetVal
}
