package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// Run executes fn once per node, concurrently (one goroutine per node,
// exactly like one process per cluster node), and waits for all of them.
// It returns the combined error of every failed node. A panicking node is
// converted into an error so one bad node cannot take the harness down.
func Run(f Fabric, fn func(ep Endpoint) error) error {
	return RunOn(f, nil, fn)
}

// RunOn is Run restricted to a subset of the fabric's nodes — the
// failover path runs a query on the surviving back-ends only. nil nodes
// means all of them. Node IDs must be valid for the fabric; duplicates
// run fn more than once and are the caller's bug.
func RunOn(f Fabric, nodes []NodeID, fn func(ep Endpoint) error) error {
	if nodes == nil {
		nodes = make([]NodeID, f.Nodes())
		for i := range nodes {
			nodes[i] = NodeID(i)
		}
	}
	for _, n := range nodes {
		if err := Validate(n, f.Nodes()); err != nil {
			return err
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(nodes))
	for i, n := range nodes {
		wg.Add(1)
		go func(slot int, n NodeID) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[slot] = fmt.Errorf("cluster: node %d panicked: %v", n, r)
				}
			}()
			errs[slot] = fn(f.Endpoint(n))
		}(i, n)
	}
	wg.Wait()
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("node %d: %w", nodes[i], err))
		}
	}
	return errors.Join(failed...)
}
