package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// Run executes fn once per node, concurrently (one goroutine per node,
// exactly like one process per cluster node), and waits for all of them.
// It returns the combined error of every failed node. A panicking node is
// converted into an error so one bad node cannot take the harness down.
func Run(f Fabric, fn func(ep Endpoint) error) error {
	var wg sync.WaitGroup
	errs := make([]error, f.Nodes())
	for i := 0; i < f.Nodes(); i++ {
		wg.Add(1)
		go func(n NodeID) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[n] = fmt.Errorf("cluster: node %d panicked: %v", n, r)
				}
			}()
			errs[n] = fn(f.Endpoint(n))
		}(NodeID(i))
	}
	wg.Wait()
	var failed []error
	for n, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("node %d: %w", n, err))
		}
	}
	return errors.Join(failed...)
}
