package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNamespaceLeaseDisjoint(t *testing.T) {
	a := NewNamespaceAllocator(1<<20, 8, 4)
	seen := map[ChannelID]QueryID{}
	var leases []*Namespace
	for i := 0; i < 8; i++ {
		ns, err := a.Lease()
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		leases = append(leases, ns)
		for off := 0; off < 4; off++ {
			ch := ns.Channel(off)
			if prev, dup := seen[ch]; dup {
				t.Fatalf("channel %d leased to both query %d and %d", ch, prev, ns.ID())
			}
			seen[ch] = ns.ID()
		}
	}
	if got := a.Leased(); got != 8 {
		t.Fatalf("Leased() = %d, want 8", got)
	}
	if _, err := a.Lease(); !errors.Is(err, ErrNamespacesExhausted) {
		t.Fatalf("exhausted lease error = %v", err)
	}
	for _, ns := range leases {
		ns.Release()
		ns.Release() // idempotent
	}
	if got := a.Leased(); got != 0 {
		t.Fatalf("Leased() after release = %d, want 0", got)
	}
}

func TestNamespaceFIFORecycle(t *testing.T) {
	a := NewNamespaceAllocator(1<<20, 3, 2)
	first, err := a.Lease()
	if err != nil {
		t.Fatal(err)
	}
	id := first.ID()
	first.Release()
	// Two slots are still colder than the just-released one; it must come
	// back last.
	for i := 0; i < 2; i++ {
		ns, err := a.Lease()
		if err != nil {
			t.Fatal(err)
		}
		if ns.ID() == id {
			t.Fatalf("slot %d re-leased while colder slots were free", id)
		}
	}
	ns, err := a.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if ns.ID() != id {
		t.Fatalf("FIFO recycle handed out %d, want %d", ns.ID(), id)
	}
}

func TestNamespaceChannelBounds(t *testing.T) {
	a := NewNamespaceAllocator(1<<20, 1, 4)
	ns, err := a.Lease()
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Channel() did not panic")
		}
	}()
	ns.Channel(4)
}

func TestNamespaceDrainAndRelease(t *testing.T) {
	f := NewInProc(2, 0)
	defer f.Close()
	a := NewNamespaceAllocator(1<<20, 2, 4)
	ns, err := a.Lease()
	if err != nil {
		t.Fatal(err)
	}
	// Strand a message on one of the namespace's channels, as an aborted
	// query would.
	if err := f.Endpoint(0).Send(1, ns.Channel(2), []byte("stale")); err != nil {
		t.Fatal(err)
	}
	ns.DrainAndRelease(f)
	if got := a.Leased(); got != 0 {
		t.Fatalf("Leased() after DrainAndRelease = %d", got)
	}
	// The next lease of the same block must not observe the stale chunk.
	ns2, err := a.Lease()
	if err != nil {
		t.Fatal(err)
	}
	defer ns2.Release()
	if _, ok, _ := f.Endpoint(1).TryRecv(ns2.Channel(2)); ok {
		t.Fatal("stale message leaked into the recycled namespace")
	}
}

func TestRecvCtxDelivery(t *testing.T) {
	for name, f := range fabrics(t, 2) {
		t.Run(name, func(t *testing.T) {
			// Background context behaves exactly like Recv.
			if err := f.Endpoint(0).Send(1, 9, []byte("a")); err != nil {
				t.Fatal(err)
			}
			msg, err := f.Endpoint(1).RecvCtx(context.Background(), 9)
			if err != nil || string(msg.Payload) != "a" {
				t.Fatalf("RecvCtx = %v, %v", msg, err)
			}
		})
	}
}

func TestRecvCtxCancelUnblocks(t *testing.T) {
	for name, f := range fabrics(t, 2) {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := f.Endpoint(1).RecvCtx(ctx, 11)
				done <- err
			}()
			select {
			case err := <-done:
				t.Fatalf("RecvCtx returned before cancel: %v", err)
			case <-time.After(20 * time.Millisecond):
			}
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("RecvCtx after cancel = %v, want context.Canceled", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("RecvCtx still blocked after cancel")
			}
		})
	}
}

func TestRecvCtxQueuedMessageBeatsCancelledCtx(t *testing.T) {
	// Inproc only: its Send enqueues synchronously, so the message is
	// guaranteed to be queued before the dead ctx races it. (TCP delivery
	// is asynchronous, which would make this scenario timing-dependent.)
	f := NewInProc(2, 0)
	defer f.Close()
	if err := f.Endpoint(0).Send(1, 13, []byte("first")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	msg, err := f.Endpoint(1).RecvCtx(ctx, 13)
	if err != nil || string(msg.Payload) != "first" {
		t.Fatalf("queued message lost to cancellation: %v, %v", msg, err)
	}
}

func TestRecvCtxDeadline(t *testing.T) {
	for name, f := range fabrics(t, 2) {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			_, err := f.Endpoint(0).RecvCtx(ctx, 17)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("RecvCtx past deadline = %v", err)
			}
		})
	}
}
