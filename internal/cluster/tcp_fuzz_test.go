package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// frameBytes builds a well-formed frame for fuzz seeds.
func frameBytes(ch ChannelID, payload []byte) []byte {
	b := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(b[0:4], uint32(ch))
	binary.LittleEndian.PutUint32(b[4:8], uint32(len(payload)))
	copy(b[8:], payload)
	return b
}

// FuzzTCPFrameDecode throws arbitrary byte streams at the TCP frame
// decoder. Whatever arrives, readFrame must not panic and must not
// allocate more than the bytes actually present (a lying length header
// is a decode error, not a multi-GB allocation).
func FuzzTCPFrameDecode(f *testing.F) {
	f.Add(frameBytes(7, []byte("hello")))
	f.Add(frameBytes(0, nil))
	f.Add([]byte{1, 2, 3})                               // truncated header
	f.Add(frameBytes(9, []byte("full"))[:10])            // mid-payload EOF
	f.Add(frameBytes(0xFFFFFF00, make([]byte, 64)))      // reserved channel id
	f.Add([]byte{0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})    // 4 GB length, no payload
	f.Add(append(frameBytes(1, []byte("a")), 0xEE, 0xD)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			ch, payload, err := readFrame(r)
			if err != nil {
				if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					// Clean EOF is only legal at a frame boundary.
					if rem := r.Len(); rem != 0 {
						t.Fatalf("clean EOF with %d bytes unread", rem)
					}
				}
				return
			}
			if len(payload) > len(data) {
				t.Fatalf("decoded %d payload bytes from %d input bytes", len(payload), len(data))
			}
			_ = ch
		}
	})
}

// TestReadFrameErrors pins the decoder's three failure classes directly
// (the fuzz seeds, asserted tightly).
func TestReadFrameErrors(t *testing.T) {
	// Truncated header.
	_, _, err := readFrame(bytes.NewReader([]byte{1, 2, 3}))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated header: err = %v, want ErrUnexpectedEOF", err)
	}
	// Mid-payload EOF.
	_, _, err = readFrame(bytes.NewReader(frameBytes(3, []byte("cut off"))[:10]))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("mid-payload EOF: err = %v, want ErrUnexpectedEOF", err)
	}
	// Oversized declared length fails before allocating.
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[4:8], maxFramePayload+1)
	_, _, err = readFrame(bytes.NewReader(hdr[:]))
	if err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("oversized length: err = %v, want explicit cap error", err)
	}
	// Clean boundary EOF is io.EOF exactly.
	_, _, err = readFrame(bytes.NewReader(nil))
	if err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	// A valid frame round-trips.
	ch, payload, err := readFrame(bytes.NewReader(frameBytes(42, []byte("ok"))))
	if err != nil || ch != 42 || string(payload) != "ok" {
		t.Errorf("valid frame: ch=%d payload=%q err=%v", ch, payload, err)
	}
}
