package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Registry is a namespace of metrics, keyed by dotted name
// ("cluster.reliable.ch_00000100.sends"). Names carry their unit as a
// suffix by convention: *_ns for nanosecond latencies, *_bytes for
// sizes, bare names for counts. Lookups get-or-create, so independent
// components that agree on a name share one metric (per-backend
// histograms accumulate across all nodes of an engine, which is exactly
// the per-backend view the paper's tables report).
//
// Resolve metrics once (at construction/wiring time) and hold the
// pointer; per-operation lookups would put a map access and a string
// hash on hot paths.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every built-in
// instrumentation site records into.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// new.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers (or replaces) a pull-mode gauge: fn is invoked
// at snapshot time only. Use it for values that already live behind a
// component's own lock (cache residency, pin counts) where mirroring
// every update would double the locking.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot is a point-in-time export of a Registry. Maps marshal with
// sorted keys, so the JSON form is deterministic for a given state.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric. Each value is read atomically; the
// set is not a single consistent cut (fine for monotonic counters).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)+len(r.funcs)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, fn := range r.funcs {
		s.Counters[n] = fn()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// CounterNames returns the registered counter and func names, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.funcs))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the registry snapshot as indented JSON — the payload
// of the /metrics endpoint.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
