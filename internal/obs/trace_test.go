package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fixedClock steps a deterministic clock by 1ms per call.
func fixedClock() func() time.Time {
	base := time.Unix(1700000000, 0).UTC()
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * time.Millisecond)
		n++
		return t
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	tr.SetClock(fixedClock())

	root := tr.StartSpan("bfs", map[string]string{"src": "1"})
	child := root.Child("level", map[string]string{"level": "0"})
	grand := child.Child("expand", nil)
	grand.End()
	child.End()
	root.End()
	tr.Emit("done", nil)

	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	// Spans record at End: grand, child, root, then the event.
	g, c, r, e := evs[0], evs[1], evs[2], evs[3]
	if g.Name != "expand" || c.Name != "level" || r.Name != "bfs" || e.Name != "done" {
		t.Fatalf("order wrong: %v %v %v %v", g.Name, c.Name, r.Name, e.Name)
	}
	if r.ParentID != 0 {
		t.Fatalf("root has parent %d", r.ParentID)
	}
	if c.ParentID != r.SpanID {
		t.Fatalf("child parent = %d, want %d", c.ParentID, r.SpanID)
	}
	if g.ParentID != c.SpanID {
		t.Fatalf("grandchild parent = %d, want %d", g.ParentID, c.SpanID)
	}
	if r.Kind != "span" || e.Kind != "event" {
		t.Fatalf("kinds wrong: %q %q", r.Kind, e.Kind)
	}
	if r.DurNs <= c.DurNs || c.DurNs <= g.DurNs {
		t.Fatalf("durations not nested: root=%d child=%d grand=%d", r.DurNs, c.DurNs, g.DurNs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seq not increasing: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestRetentionCap(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Emit(fmt.Sprintf("e%d", i), nil)
	}
	evs := tr.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("retained %d, want 8", len(evs))
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", tr.Dropped())
	}
	// The newest 8 survive, oldest first.
	for i, e := range evs {
		if want := fmt.Sprintf("e%d", 12+i); e.Name != want {
			t.Fatalf("evs[%d] = %q, want %q", i, e.Name, want)
		}
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit("x", nil)
	s := tr.StartSpan("y", nil)
	s.Child("z", nil).End()
	s.End()
	if tr.Snapshot() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer should be empty")
	}
}

// TestConcurrentEmit exercises emission, spans, and snapshots from many
// goroutines under -race.
func TestConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sp := tr.StartSpan("op", nil)
				tr.Emit("tick", nil)
				sp.End()
				if i%100 == 0 {
					_ = tr.Snapshot()
					_ = tr.Dropped()
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(len(tr.Snapshot())) + tr.Dropped()
	if want := int64(workers * iters * 2); total != want {
		t.Fatalf("retained+dropped = %d, want %d", total, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	tr := NewTracer(4)
	tr.SetClock(fixedClock())
	sp := tr.StartSpan("ingest.window", map[string]string{"dest": "2"})
	tr.Emit("fault.drop", map[string]string{"ch": "0x100"})
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "dropped": 0,
  "events": [
    {
      "seq": 1,
      "unix_nano": 1700000000001000000,
      "name": "fault.drop",
      "kind": "event",
      "attrs": {
        "ch": "0x100"
      }
    },
    {
      "seq": 2,
      "unix_nano": 1700000000002000000,
      "name": "ingest.window",
      "kind": "span",
      "span_id": 1,
      "dur_ns": 2000000,
      "attrs": {
        "dest": "2"
      }
    }
  ]
}
`
	if buf.String() != golden {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), golden)
	}
	// And it must round-trip as valid JSON.
	var exp struct {
		Dropped int64   `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &exp); err != nil {
		t.Fatal(err)
	}
	if len(exp.Events) != 2 || exp.Events[1].DurNs != 2_000_000 {
		t.Fatalf("round trip wrong: %+v", exp)
	}
}
