package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// Server is a live observability endpoint:
//
//	/metrics       registry snapshot (expvar-style JSON)
//	/trace         tracer ring-buffer export
//	/debug/vars    standard expvar (includes the registry under "mssg")
//	/debug/pprof/  net/http/pprof profiles (heap, goroutine, profile, ...)
//
// It binds its own mux, so running one never pollutes (or depends on)
// http.DefaultServeMux.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// publishOnce guards the expvar publication of the default registry:
// expvar panics on duplicate names, and tests may start several servers.
var publishOnce sync.Once

// Serve starts the observability server on addr (e.g. ":8080",
// "127.0.0.1:0"). reg and tr may be nil, selecting the process-wide
// defaults.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	if reg == nil {
		reg = Default()
	}
	if tr == nil {
		tr = DefaultTracer()
	}
	publishOnce.Do(func() {
		expvar.Publish("mssg", expvar.Func(func() any { return Default().Snapshot() }))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "mssg observability\n\n/metrics\n/trace\n/debug/vars\n/debug/pprof/\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close gracefully drains in-flight scrapes (bounded) and stops the
// server. Safe on a nil *Server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// OnSignal invokes fn (in its own goroutine) the first time the process
// receives SIGINT or SIGTERM. The cmd/ tools use it to flush final
// stats snapshots and shut the metrics server down instead of dying
// mid-run; fn is expected to exit the process, but if it returns, a
// second signal falls back to Go's default (immediate) handling.
func OnSignal(fn func(os.Signal)) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		signal.Stop(ch)
		fn(sig)
	}()
}
