// Package obs is MSSG's dependency-free observability layer: a metrics
// registry (atomic counters, gauges, and fixed-bucket histograms with
// percentile snapshots), a ring-buffered span/event tracer, and a live
// HTTP server exposing both plus the Go runtime's pprof endpoints.
//
// The paper (chapter 5) evaluates MSSG entirely through throughput and
// latency tables; this package is how the reproduction attributes that
// time to filters, fabrics, backends, and BFS levels while a run is in
// flight instead of inferring it from coarse after-the-fact Stats
// snapshots.
//
// Design constraints, in order:
//
//  1. Hot-path cost. Counters and gauges are single atomic adds;
//     histogram observation is two atomic adds plus one bucket add.
//     Instrumented code paths hold pre-resolved *Counter/*Histogram
//     pointers so the registry map is never touched per operation.
//  2. No dependencies. Everything is stdlib; the package imports
//     nothing from the rest of the repo, so every layer (cluster,
//     datacutter, graphdb, query) may depend on it without cycles.
//  3. Always-on by default. Coarse-grained metrics (per window, per
//     BFS level, per message) record unconditionally against the
//     Default registry; only per-storage-op latency timing is gated
//     (graphdb.Options.Metrics) because a clock read per adjacency
//     retrieval is measurable on in-memory backends.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (queue depths, skew ratios).
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of every Histogram: bucket i
// holds observations v with 2^(i-1) < v <= 2^i (bucket 0 holds v <= 1),
// covering 1ns..~9.2e18 with no configuration and no allocation. The
// relative quantile error of power-of-two buckets is bounded by 2x,
// which is ample for the order-of-magnitude attribution this layer is
// for (and for the paper's tables, which span decades).
const histBuckets = 64

// Histogram is a fixed-bucket (power-of-two) histogram of int64
// observations — latencies in nanoseconds by convention (name them
// *_ns), but any non-negative magnitude works (fringe sizes, window
// edge counts).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketFor maps an observation to its bucket index.
func bucketFor(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1)) // smallest i with 2^i >= v
}

// Observe records one observation. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketFor(v)].Add(1)
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(start)))
	}
}

// HistSnapshot is a consistent-enough view of a Histogram: each field is
// read atomically, and the percentile estimates are the upper bound of
// the bucket containing that quantile (so P50 <= true p50 <= 2*P50).
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Mean  int64 `json:"mean"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// bucketUpper returns the upper value bound of bucket i.
func bucketUpper(i int) int64 {
	if i >= 63 {
		return int64(1)<<62 + (int64(1)<<62 - 1) // MaxInt64 without overflow
	}
	return int64(1) << i
}

// Snapshot captures the histogram's counts and percentile estimates.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	if s.Count == 0 {
		return s
	}
	s.Mean = s.Sum / s.Count
	var cum [histBuckets]int64
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
		cum[i] = total
	}
	// total may trail Count under concurrent writers; quantiles are
	// computed against what the buckets actually held.
	if total == 0 {
		return s
	}
	q := func(p float64) int64 {
		rank := int64(p * float64(total))
		if rank < 1 {
			rank = 1
		}
		for i := range cum {
			if cum[i] >= rank {
				u := bucketUpper(i)
				if s.Max > 0 && u > s.Max {
					return s.Max
				}
				return u
			}
		}
		return s.Max
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}
