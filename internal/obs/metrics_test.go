package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// nil receivers are no-ops, so call sites never need enabled checks.
	var nc *Counter
	nc.Inc()
	nc.Add(5)
	if nc.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var ng *Gauge
	ng.Set(9)
	if ng.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var nh *Histogram
	nh.Observe(5)
	nh.ObserveSince(time.Now())
	if s := nh.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram should snapshot empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 100 observations of 100ns, 5 of ~10µs, 1 of ~1ms.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for i := 0; i < 5; i++ {
		h.Observe(10_000)
	}
	h.Observe(1_000_000)
	s := h.Snapshot()
	if s.Count != 106 {
		t.Fatalf("count = %d, want 106", s.Count)
	}
	if s.Max != 1_000_000 {
		t.Fatalf("max = %d, want 1000000", s.Max)
	}
	// Power-of-two buckets bound each estimate to [v, 2v).
	if s.P50 < 100 || s.P50 >= 200 {
		t.Fatalf("p50 = %d, want in [100,200)", s.P50)
	}
	if s.P95 < 100 || s.P95 >= 200 {
		t.Fatalf("p95 = %d, want in [100,200)", s.P95)
	}
	if s.P99 < 10_000 || s.P99 >= 20_000 {
		t.Fatalf("p99 = %d, want in [10000,20000)", s.P99)
	}
	if s.Mean <= 0 || s.Sum != 100*100+5*10_000+1_000_000 {
		t.Fatalf("sum/mean wrong: %+v", s)
	}
}

func TestHistogramMaxClampsEstimates(t *testing.T) {
	var h Histogram
	h.Observe(5) // bucket upper bound is 8; max is 5
	s := h.Snapshot()
	if s.P50 != 5 || s.P99 != 5 {
		t.Fatalf("estimates should clamp to max: %+v", s)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.b")
	c2 := r.Counter("a.b")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	if r.Counter("a.c") == c1 {
		t.Fatal("distinct names must return distinct counters")
	}
	if r.Gauge("a.b") == nil || r.Histogram("a.b") == nil {
		t.Fatal("kinds are namespaced independently")
	}
	c1.Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h_ns").Observe(1000)
	r.RegisterFunc("pull", func() int64 { return 99 })

	s := r.Snapshot()
	if s.Counters["a.b"] != 3 || s.Counters["pull"] != 99 {
		t.Fatalf("counters snapshot wrong: %v", s.Counters)
	}
	if s.Gauges["g"] != -2 {
		t.Fatalf("gauges snapshot wrong: %v", s.Gauges)
	}
	if s.Histograms["h_ns"].Count != 1 {
		t.Fatalf("histograms snapshot wrong: %v", s.Histograms)
	}
}

func TestRegistryWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(7)
	r.Histogram("y_ns").Observe(123)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["x"] != 7 || s.Histograms["y_ns"].Count != 1 {
		t.Fatalf("round trip lost data: %+v", s)
	}
}

// TestConcurrentMetrics hammers one counter, gauge, and histogram from
// many goroutines while snapshots run, under -race.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h")
			g := r.Gauge("g")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(int64(i % 1000))
				g.Add(1)
				g.Add(-1)
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != workers*iters {
		t.Fatalf("counter = %d, want %d", s.Counters["c"], workers*iters)
	}
	if s.Histograms["h"].Count != workers*iters {
		t.Fatalf("hist count = %d, want %d", s.Histograms["h"].Count, workers*iters)
	}
	if s.Gauges["g"] != 0 {
		t.Fatalf("gauge = %d, want 0", s.Gauges["g"])
	}
}
