package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one tracer record: an instantaneous event, or a completed
// span (Kind "span", with a duration and optional parent). Attrs maps
// marshal with sorted keys, so exported JSON is deterministic.
type Event struct {
	Seq      uint64            `json:"seq"`
	UnixNano int64             `json:"unix_nano"`
	Name     string            `json:"name"`
	Kind     string            `json:"kind"` // "event" | "span"
	SpanID   uint64            `json:"span_id,omitempty"`
	ParentID uint64            `json:"parent_id,omitempty"`
	DurNs    int64             `json:"dur_ns,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Tracer is a fixed-capacity ring buffer of Events. Emission is
// mutex-guarded and allocation-light; when the ring is full the oldest
// record is overwritten and Dropped is incremented, so a tracer can run
// for the whole life of a process with bounded memory. All methods are
// safe on a nil *Tracer (no-ops), so instrumentation sites never need
// an enabled check.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	buf     []Event // ring storage, len == cap once full
	start   int     // index of the oldest record
	seq     uint64
	spanSeq uint64
	dropped int64
	now     func() time.Time
}

// DefaultTracerCap is the retention of the process-wide tracer: deep
// enough to hold every BFS level span and fault event of a typical
// experiment sweep, small enough to be invisible in memory profiles.
const DefaultTracerCap = 4096

// NewTracer returns a tracer retaining the most recent cap records
// (cap <= 0 selects DefaultTracerCap).
func NewTracer(cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultTracerCap
	}
	return &Tracer{cap: cap, now: time.Now}
}

var defaultTracer = NewTracer(DefaultTracerCap)

// DefaultTracer returns the process-wide tracer every built-in
// instrumentation site records into.
func DefaultTracer() *Tracer { return defaultTracer }

// SetClock replaces the tracer's time source. For tests (golden JSON
// export needs deterministic timestamps); not safe to call while other
// goroutines are emitting.
func (t *Tracer) SetClock(now func() time.Time) {
	if t != nil {
		t.now = now
	}
}

// push appends one record, overwriting the oldest when full.
func (t *Tracer) push(e Event) {
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.start] = e
		t.start = (t.start + 1) % t.cap
		t.dropped++
	}
	t.mu.Unlock()
}

// Emit records an instantaneous event.
func (t *Tracer) Emit(name string, attrs map[string]string) {
	if t == nil {
		return
	}
	t.push(Event{UnixNano: t.now().UnixNano(), Name: name, Kind: "event", Attrs: attrs})
}

// Span is an in-flight operation started by StartSpan. It is recorded
// into the ring only when End is called, stamped with its duration.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  map[string]string
}

// StartSpan opens a root span. The returned Span is nil (and safe to
// use) when the tracer is nil.
func (t *Tracer) StartSpan(name string, attrs map[string]string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.spanSeq++
	id := t.spanSeq
	t.mu.Unlock()
	return &Span{t: t, id: id, name: name, start: t.now(), attrs: attrs}
}

// Child opens a nested span recording this span as its parent.
func (s *Span) Child(name string, attrs map[string]string) *Span {
	if s == nil {
		return nil
	}
	c := s.t.StartSpan(name, attrs)
	c.parent = s.id
	return c
}

// End records the span with its measured duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.t.now()
	s.t.push(Event{
		UnixNano: now.UnixNano(),
		Name:     s.name,
		Kind:     "span",
		SpanID:   s.id,
		ParentID: s.parent,
		DurNs:    now.Sub(s.start).Nanoseconds(),
		Attrs:    s.attrs,
	})
}

// Snapshot returns the retained records, oldest first.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	for i := 0; i < len(t.buf); i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// Dropped returns how many records the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// traceExport is the JSON schema of WriteJSON.
type traceExport struct {
	Dropped int64   `json:"dropped"`
	Events  []Event `json:"events"`
}

// WriteJSON writes the retained records as indented JSON — the payload
// of the /trace endpoint.
func (t *Tracer) WriteJSON(w io.Writer) error {
	exp := traceExport{Dropped: t.Dropped(), Events: t.Snapshot()}
	if exp.Events == nil {
		exp.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(exp)
}
