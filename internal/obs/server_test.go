package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.hits").Add(5)
	tr := NewTracer(8)
	tr.Emit("boot", nil)

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["test.hits"] != 5 {
		t.Fatalf("/metrics counters = %v", snap.Counters)
	}

	code, body = get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	var texp struct {
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(body, &texp); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(texp.Events) != 1 || texp.Events[0].Name != "boot" {
		t.Fatalf("/trace events = %+v", texp.Events)
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/"} {
		if code, _ := get(t, base+path); code != http.StatusOK {
			t.Fatalf("%s status %d", path, code)
		}
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope status %d, want 404", code)
	}
}

func TestServeNilDefaults(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, "http://"+srv.Addr()+"/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var nilSrv *Server
	if nilSrv.Close() != nil || nilSrv.Addr() != "" {
		t.Fatal("nil server should be inert")
	}
}
