// Benchmarks regenerating every table and figure of the paper's
// evaluation (chapter 5), one testing.B per artifact, plus
// microbenchmarks of the load-bearing primitives. The figure benches
// wrap the same experiment harness as cmd/mssg-bench; each iteration
// performs the entire experiment, so run them with -benchtime=1x (the
// interesting output is the reported tables and custom metrics, not
// ns/op):
//
//	go test -bench 'BenchmarkFig|BenchmarkTable' -benchtime=1x
//
// Ablation benches for the design choices DESIGN.md calls out live in
// ablation_bench_test.go.
package mssg_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"mssg/internal/experiments"
	"mssg/internal/graphdb"
	"mssg/internal/ingest"
	"mssg/internal/query"
)

// benchScale keeps one full figure regeneration in the seconds range.
const benchScale = 0.002

// runExperiment executes one experiment per iteration and logs its table
// on the last iteration.
func runExperiment(b *testing.B, id string) {
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	p := &experiments.Params{Scale: benchScale, Queries: 20}
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		// Fresh scratch space per iteration: experiments create engines
		// with fixed labels.
		p.Dir = b.TempDir()
		t, err := exp.Run(p)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		table = t
	}
	if table != nil {
		b.Logf("\n%s", table.String())
	}
}

func BenchmarkTable51_GraphStats(b *testing.B)   { runExperiment(b, "table5.1") }
func BenchmarkFig51_InMemorySearch(b *testing.B) { runExperiment(b, "fig5.1") }
func BenchmarkFig52_CacheEffect(b *testing.B)    { runExperiment(b, "fig5.2") }
func BenchmarkFig53_IngestPubMedS(b *testing.B)  { runExperiment(b, "fig5.3") }
func BenchmarkFig54_SearchPubMedS(b *testing.B)  { runExperiment(b, "fig5.4") }
func BenchmarkFig55_IngestPubMedL(b *testing.B)  { runExperiment(b, "fig5.5") }
func BenchmarkFig56_SearchPubMedL(b *testing.B)  { runExperiment(b, "fig5.6") }
func BenchmarkFig57_EdgesPerSec(b *testing.B)    { runExperiment(b, "fig5.7") }
func BenchmarkFig58_SynSearch(b *testing.B)      { runExperiment(b, "fig5.8") }
func BenchmarkFig59_SynEdgesPerSec(b *testing.B) { runExperiment(b, "fig5.9") }
func BenchmarkQPS_ConcurrentMixed(b *testing.B)  { runExperiment(b, "qps") }
func BenchmarkTenants_FairShare(b *testing.B)    { runExperiment(b, "tenants") }
func BenchmarkIO_SemiExternal(b *testing.B)      { runExperiment(b, "io") }
func BenchmarkMigration_LiveJoin(b *testing.B)   { runExperiment(b, "migration") }

// BenchmarkBFSWorkers compares serial (workers=1) against parallel
// (workers=GOMAXPROCS) fringe expansion on the shootout graph, over
// grDB with a bounded cache and simulated device latency — the
// configuration where overlapping adjacency fetches matters. Compare
// the ms/query and edges/s metrics between the two sub-benchmarks:
//
//	go test -run xxx -bench BenchmarkBFSWorkers -benchtime=1x
//
// The parallel leg uses at least 4 workers even on small machines:
// expansion overlaps simulated device latency (sleeps, not CPU), so
// extra workers pay off regardless of core count.
func BenchmarkBFSWorkers(b *testing.B) {
	opts := graphdb.Options{CacheBytes: 256 << 10, SimReadLatency: 100 * time.Microsecond}
	parallel := runtime.GOMAXPROCS(0)
	if parallel < 4 {
		parallel = 4
	}
	for _, workers := range []int{1, parallel} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total, traversed := measureSearch(b, "grdb", opts, ingest.Config{},
					query.BFSConfig{Workers: workers})
				reportSearch(b, total, traversed, len(ablationPairs))
			}
		})
	}
}

// sanity check that the bench ids and the harness stay in sync.
func TestAllExperimentIDsHaveBenches(t *testing.T) {
	want := map[string]bool{
		"table5.1": true, "fig5.1": true, "fig5.2": true, "fig5.3": true,
		"fig5.4": true, "fig5.5": true, "fig5.6": true, "fig5.7": true,
		"fig5.8": true, "fig5.9": true, "qps": true, "tenants": true,
		"io": true, "migration": true,
	}
	for _, e := range experiments.All() {
		if !want[e.ID] {
			t.Errorf("experiment %s has no benchmark wrapper", e.ID)
		}
		delete(want, e.ID)
	}
	for id := range want {
		t.Errorf("benchmark wrapper for %s has no experiment", id)
	}
}
