package mssg_test

import (
	"fmt"
	"log"
	"os"

	"mssg"
)

// ExampleNew shows the minimal MSSG lifecycle: build a simulated cluster,
// ingest edges, search.
func ExampleNew() {
	dir, err := os.MkdirTemp("", "mssg-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := mssg.New(mssg.Config{
		Backends: 4,
		Backend:  "grdb",
		Dir:      dir,
		Ingest:   mssg.IngestConfig{AddReverse: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	if _, err := eng.IngestEdges([]mssg.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
	}); err != nil {
		log.Fatal(err)
	}
	res, err := eng.BFS(mssg.BFSConfig{Source: 0, Dest: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Found, res.PathLength)
	// Output: true 3
}

// ExampleEngine_BFS demonstrates path reconstruction: the search returns
// the connecting entities, not just the distance.
func ExampleEngine_BFS() {
	eng, err := mssg.New(mssg.Config{
		Backends: 2,
		Backend:  "hashmap",
		Ingest:   mssg.IngestConfig{AddReverse: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	if _, err := eng.IngestEdges([]mssg.Edge{
		{Src: 10, Dst: 20}, {Src: 20, Dst: 30}, {Src: 30, Dst: 40},
	}); err != nil {
		log.Fatal(err)
	}
	res, err := eng.BFS(mssg.BFSConfig{Source: 10, Dest: 40, ReturnPath: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Path)
	// Output: [10 20 30 40]
}

// ExampleGenerate builds a paper-shaped synthetic workload and reports
// Table 5.1-style statistics.
func ExampleGenerate() {
	cfg := mssg.GenConfig{Name: "demo", Vertices: 1000, M: 3, Seed: 42}
	edges, err := mssg.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := mssg.ComputeStats(cfg.Name, edges, cfg.Vertices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stats.Vertices == 1000, stats.MinDegree >= 1, stats.AvgDegree > 4)
	// Output: true true true
}

// ExampleOntology validates semantic edges against a Figure 1.1-style
// blueprint.
func ExampleOntology() {
	ont := mssg.NewOntology()
	person := ont.DefineVertexType("Person")
	meeting := ont.DefineVertexType("Meeting")
	date := ont.DefineVertexType("Date")
	attends := ont.DefineEdgeType("attends")
	ont.AllowSymmetric(person, attends, meeting)

	legal := mssg.TypedEdge{
		Edge:     mssg.Edge{Src: 1, Dst: 2},
		SrcType:  person,
		EdgeType: attends,
		DstType:  meeting,
	}
	illegal := mssg.TypedEdge{
		Edge:     mssg.Edge{Src: 1, Dst: 3},
		SrcType:  person,
		EdgeType: attends,
		DstType:  date, // Persons never connect to Dates directly
	}
	fmt.Println(ont.Validate(legal) == nil, ont.Validate(illegal) == nil)
	// Output: true false
}
