// Ablation benchmarks for the design choices DESIGN.md §5 calls out:
// grDB's level ladder, link-vs-defragment chain layout, the pipelined
// BFS threshold, the block-cache budget, and the declustering policy.
// Run with -benchtime=1x; results are reported as custom metrics
// (ms/query, edges/s).
package mssg_test

import (
	"fmt"
	"testing"
	"time"

	"mssg/internal/core"
	"mssg/internal/gen"
	"mssg/internal/graph"
	"mssg/internal/graphdb"
	_ "mssg/internal/graphdb/all"
	"mssg/internal/graphdb/grdb"
	"mssg/internal/ingest"
	"mssg/internal/query"
)

// ablationWorkload builds the shared graph + queries once per process.
var ablationEdges []graph.Edge
var ablationPairs [][2]graph.VertexID

func ablationWorkload(b *testing.B) ([]graph.Edge, [][2]graph.VertexID) {
	b.Helper()
	if ablationEdges == nil {
		cfg := gen.PubMedS(0.002)
		edges, err := gen.Generate(cfg)
		if err != nil {
			b.Fatalf("generate: %v", err)
		}
		ablationEdges = edges
		ablationPairs = gen.RandomQueryPairs(edges, cfg.Vertices, 15, 2024)
	}
	return ablationEdges, ablationPairs
}

// measureSearch ingests into a fresh engine and times the query workload.
func measureSearch(b *testing.B, backend string, opts graphdb.Options,
	icfg ingest.Config, qcfg query.BFSConfig) (time.Duration, int64) {
	b.Helper()
	edges, pairs := ablationWorkload(b)
	icfg.AddReverse = true
	e, err := core.New(core.Config{
		Backends:  8,
		Backend:   backend,
		Dir:       b.TempDir(),
		DBOptions: opts,
		Ingest:    icfg,
	})
	if err != nil {
		b.Fatalf("core.New: %v", err)
	}
	defer e.Close()
	if _, err := e.IngestEdges(edges); err != nil {
		b.Fatalf("ingest: %v", err)
	}
	var total time.Duration
	var traversed int64
	for _, q := range pairs {
		qcfg.Source, qcfg.Dest = q[0], q[1]
		t0 := time.Now()
		res, err := e.BFS(qcfg)
		if err != nil {
			b.Fatalf("BFS: %v", err)
		}
		total += time.Since(t0)
		traversed += res.EdgesTraversed
	}
	return total, traversed
}

func reportSearch(b *testing.B, total time.Duration, traversed int64, queries int) {
	b.ReportMetric(float64(total.Microseconds())/1000/float64(queries), "ms/query")
	b.ReportMetric(float64(traversed)/total.Seconds(), "edges/s")
}

// BenchmarkAblationGrDBLevels sweeps grDB level ladders: the prototype's
// exponential ladder vs a flat two-level layout vs an aggressive
// power-tower (d_l = 2^(2^l), the paper's suggested curve).
func BenchmarkAblationGrDBLevels(b *testing.B) {
	ladders := map[string][]graphdb.LevelSpec{
		"prototype-6level": nil, // grdb default: 2,4,16,256,4K,16K
		"flat-2level": {
			{SubBlockCap: 2, BlockBytes: 4 << 10},
			{SubBlockCap: 512, BlockBytes: 4 << 10},
		},
		"power-tower": {
			{SubBlockCap: 2, BlockBytes: 4 << 10},
			{SubBlockCap: 4, BlockBytes: 4 << 10},
			{SubBlockCap: 16, BlockBytes: 4 << 10},
			{SubBlockCap: 256, BlockBytes: 4 << 10},
			{SubBlockCap: 65536, BlockBytes: 1 << 20},
		},
	}
	for name, levels := range ladders {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total, traversed := measureSearch(b, "grdb",
					graphdb.Options{Levels: levels}, ingest.Config{}, query.BFSConfig{})
				reportSearch(b, total, traversed, len(ablationPairs))
			}
		})
	}
}

// BenchmarkAblationDefrag measures grDB search before and after the
// idle-time chain compaction of §3.4.1.
func BenchmarkAblationDefrag(b *testing.B) {
	edges, pairs := ablationWorkload(b)
	for _, defrag := range []bool{false, true} {
		name := "linked-chains"
		if defrag {
			name = "defragmented"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := core.New(core.Config{
					Backends: 8,
					Backend:  "grdb",
					Dir:      b.TempDir(),
					Ingest:   ingest.Config{AddReverse: true},
				})
				if err != nil {
					b.Fatalf("core.New: %v", err)
				}
				if _, err := e.IngestEdges(edges); err != nil {
					b.Fatalf("ingest: %v", err)
				}
				if defrag {
					var rewritten int64
					for _, db := range e.Databases() {
						n, err := db.(*grdb.DB).Defragment()
						if err != nil {
							b.Fatalf("defragment: %v", err)
						}
						rewritten += n
					}
					b.ReportMetric(float64(rewritten), "chains-rewritten")
				}
				var total time.Duration
				var traversed int64
				for _, q := range pairs {
					t0 := time.Now()
					res, err := e.BFS(query.BFSConfig{Source: q[0], Dest: q[1]})
					if err != nil {
						b.Fatalf("BFS: %v", err)
					}
					total += time.Since(t0)
					traversed += res.EdgesTraversed
				}
				reportSearch(b, total, traversed, len(pairs))
				e.Close()
			}
		})
	}
}

// BenchmarkAblationPipelineThreshold sweeps Algorithm 2's chunk
// threshold, including the degenerate 1 (send every vertex immediately).
func BenchmarkAblationPipelineThreshold(b *testing.B) {
	for _, threshold := range []int{1, 64, 1024, 16384} {
		b.Run(fmt.Sprintf("threshold-%d", threshold), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total, traversed := measureSearch(b, "grdb", graphdb.Options{},
					ingest.Config{}, query.BFSConfig{Pipelined: true, Threshold: threshold})
				reportSearch(b, total, traversed, len(ablationPairs))
			}
		})
	}
}

// BenchmarkAblationCacheSize sweeps grDB's block-cache budget from
// disabled to comfortably larger than the working set (Fig 5.2's axis,
// finer grained).
func BenchmarkAblationCacheSize(b *testing.B) {
	for _, kb := range []int64{-1, 64, 512, 4096, 65536} {
		name := fmt.Sprintf("cache-%dKB", kb)
		if kb < 0 {
			name = "cache-off"
		}
		bytes := kb * 1024
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total, traversed := measureSearch(b, "grdb",
					graphdb.Options{CacheBytes: bytes}, ingest.Config{}, query.BFSConfig{})
				reportSearch(b, total, traversed, len(ablationPairs))
			}
		})
	}
}

// BenchmarkAblationDecluster compares vertex-granularity declustering
// with the known-mapping BFS against edge-granularity declustering with
// the broadcast BFS (paper §3.2/§4.2 trade-off).
func BenchmarkAblationDecluster(b *testing.B) {
	type variant struct {
		name   string
		policy func() ingest.Policy
	}
	variants := []variant{
		{"vertex-known-mapping", func() ingest.Policy { return ingest.VertexMod{} }},
		{"edge-broadcast", func() ingest.Policy { return &ingest.EdgeRoundRobin{} }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total, traversed := measureSearch(b, "hashmap", graphdb.Options{},
					ingest.Config{Policy: v.policy}, query.BFSConfig{})
				reportSearch(b, total, traversed, len(ablationPairs))
			}
		})
	}
}

// BenchmarkAblationFabric compares the in-process and loopback-TCP
// transports on the same search workload.
func BenchmarkAblationFabric(b *testing.B) {
	edges, pairs := ablationWorkload(b)
	for _, kind := range []core.FabricKind{core.InProc, core.TCP} {
		name := "inproc"
		if kind == core.TCP {
			name = "tcp"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := core.New(core.Config{
					Backends: 8,
					Backend:  "hashmap",
					Fabric:   kind,
					Ingest:   ingest.Config{AddReverse: true},
				})
				if err != nil {
					b.Fatalf("core.New: %v", err)
				}
				if _, err := e.IngestEdges(edges); err != nil {
					b.Fatalf("ingest: %v", err)
				}
				var total time.Duration
				var traversed int64
				for _, q := range pairs {
					t0 := time.Now()
					res, err := e.BFS(query.BFSConfig{Source: q[0], Dest: q[1]})
					if err != nil {
						b.Fatalf("BFS: %v", err)
					}
					total += time.Since(t0)
					traversed += res.EdgesTraversed
				}
				reportSearch(b, total, traversed, len(pairs))
				e.Close()
			}
		})
	}
}

// BenchmarkAblationPrefetch measures the paper's §4.2 future-work
// optimization: warming grDB's cache with offset-sorted fringe prefetch
// before each BFS level, with a cache big enough to hold a level's
// working set but simulated latency on every physical read.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, prefetch := range []bool{false, true} {
		name := "no-prefetch"
		if prefetch {
			name = "prefetch"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total, traversed := measureSearch(b, "grdb",
					graphdb.Options{CacheBytes: 1 << 20, SimReadLatency: 25 * time.Microsecond},
					ingest.Config{}, query.BFSConfig{Prefetch: prefetch})
				reportSearch(b, total, traversed, len(ablationPairs))
			}
		})
	}
}

// BenchmarkAblationClusteringPolicy compares modulo vertex declustering
// against the §3.2 summary-based greedy affinity policy, reporting the
// cross-node fringe traffic each induces during search.
func BenchmarkAblationClusteringPolicy(b *testing.B) {
	edges, pairs := ablationWorkload(b)
	type variant struct {
		name   string
		policy func() ingest.Policy
	}
	greedy := ingest.NewGreedyCluster(1024)
	variants := []variant{
		{"vertex-mod", nil},
		{"greedy-affinity", func() ingest.Policy { return greedy }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := core.New(core.Config{
					Backends:  8,
					FrontEnds: 2,
					Backend:   "hashmap",
					Ingest:    ingest.Config{AddReverse: true, Policy: v.policy},
				})
				if err != nil {
					b.Fatalf("core.New: %v", err)
				}
				if _, err := e.IngestEdges(edges); err != nil {
					b.Fatalf("ingest: %v", err)
				}
				var total time.Duration
				var traversed, fringeSent int64
				for _, q := range pairs {
					t0 := time.Now()
					res, err := e.BFS(query.BFSConfig{Source: q[0], Dest: q[1]})
					if err != nil {
						b.Fatalf("BFS: %v", err)
					}
					total += time.Since(t0)
					traversed += res.EdgesTraversed
					fringeSent += res.FringeSent
				}
				reportSearch(b, total, traversed, len(pairs))
				b.ReportMetric(float64(fringeSent), "fringe-sent")
				e.Close()
			}
		})
	}
}

// BenchmarkAblationOverflowStrategy compares grDB's two §3.4.1 overflow
// strategies: link-on-overflow (the prototype's choice, compaction
// deferred to idle time) vs copy-up-on-overflow (pay copies at insertion
// for shorter chains at read time).
func BenchmarkAblationOverflowStrategy(b *testing.B) {
	edges, pairs := ablationWorkload(b)
	for _, copyUp := range []bool{false, true} {
		name := "link-on-overflow"
		if copyUp {
			name = "copy-up-on-overflow"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := core.New(core.Config{
					Backends:  8,
					Backend:   "grdb",
					Dir:       b.TempDir(),
					DBOptions: graphdb.Options{CopyUpOnOverflow: copyUp},
					Ingest:    ingest.Config{AddReverse: true, WindowEdges: 64},
				})
				if err != nil {
					b.Fatalf("core.New: %v", err)
				}
				t0 := time.Now()
				if _, err := e.IngestEdges(edges); err != nil {
					b.Fatalf("ingest: %v", err)
				}
				b.ReportMetric(time.Since(t0).Seconds(), "ingest-s")
				var total time.Duration
				var traversed int64
				for _, q := range pairs {
					t1 := time.Now()
					res, err := e.BFS(query.BFSConfig{Source: q[0], Dest: q[1]})
					if err != nil {
						b.Fatalf("BFS: %v", err)
					}
					total += time.Since(t1)
					traversed += res.EdgesTraversed
				}
				reportSearch(b, total, traversed, len(pairs))
				e.Close()
			}
		})
	}
}
