package mssg_test

import (
	"reflect"
	"testing"

	"mssg"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	eng, err := mssg.New(mssg.Config{
		Backends: 3,
		Backend:  "grdb",
		Dir:      t.TempDir(),
		Ingest:   mssg.IngestConfig{AddReverse: true},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer eng.Close()

	edges := []mssg.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
	}
	if _, err := eng.IngestEdges(edges); err != nil {
		t.Fatalf("IngestEdges: %v", err)
	}
	res, err := eng.BFS(mssg.BFSConfig{Source: 0, Dest: 3})
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	if !res.Found || res.PathLength != 3 {
		t.Fatalf("BFS = %+v, want found at length 3", res)
	}
}

func TestPublicBackendsAndAnalyses(t *testing.T) {
	want := []string{"array", "bdb", "grdb", "hashmap", "mysql", "stream"}
	if got := mssg.Backends(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Backends = %v", got)
	}
	analyses := mssg.Analyses()
	if len(analyses) == 0 || analyses[0] != "bfs" {
		t.Fatalf("Analyses = %v", analyses)
	}
}

func TestPublicGenerators(t *testing.T) {
	cfg := mssg.PubMedS(0.0005)
	edges, err := mssg.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	stats, err := mssg.ComputeStats(cfg.Name, edges, cfg.Vertices)
	if err != nil {
		t.Fatalf("ComputeStats: %v", err)
	}
	if stats.AvgDegree < 10 || stats.AvgDegree > 20 {
		t.Fatalf("avg degree %f outside PubMed-S-like range", stats.AvgDegree)
	}
	// The hub must dominate, as in Table 5.1.
	if float64(stats.MaxDegree) < 0.1*float64(stats.Vertices) {
		t.Fatalf("max degree %d too small for a PubMed-like hub (V=%d)", stats.MaxDegree, stats.Vertices)
	}
	for _, mk := range []func(float64) mssg.GenConfig{mssg.PubMedL, mssg.Syn2B} {
		if _, err := mssg.Generate(mk(0.0001)); err != nil {
			t.Fatalf("preset generate: %v", err)
		}
	}
}

func TestPublicOntology(t *testing.T) {
	o := mssg.NewOntology()
	a := o.DefineVertexType("A")
	b := o.DefineVertexType("B")
	r := o.DefineEdgeType("rel")
	o.AllowSymmetric(a, r, b)
	ok := mssg.TypedEdge{Edge: mssg.Edge{Src: 1, Dst: 2}, SrcType: a, EdgeType: r, DstType: b}
	if err := o.Validate(ok); err != nil {
		t.Fatalf("legal edge rejected: %v", err)
	}
	bad := mssg.TypedEdge{Edge: mssg.Edge{Src: 1, Dst: 2}, SrcType: a, EdgeType: r, DstType: a}
	if err := o.Validate(bad); err == nil {
		t.Fatal("illegal edge accepted")
	}
}

func TestPublicAnalysisViaRegistry(t *testing.T) {
	eng, err := mssg.New(mssg.Config{Backends: 2, Backend: "hashmap"})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.IngestEdges([]mssg.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	out, err := eng.RunAnalysis("bfs", map[string]string{"source": "0", "dest": "2", "broadcast": "true"})
	if err != nil {
		t.Fatalf("RunAnalysis: %v", err)
	}
	res := out.(mssg.BFSResult)
	if !res.Found || res.PathLength != 2 {
		t.Fatalf("analysis = %+v", res)
	}
}

func TestPublicKHopAndComponent(t *testing.T) {
	eng, err := mssg.New(mssg.Config{
		Backends: 3,
		Backend:  "hashmap",
		Ingest:   mssg.IngestConfig{AddReverse: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// A 5-chain: 0-1-2-3-4-5.
	var edges []mssg.Edge
	for i := 0; i < 5; i++ {
		edges = append(edges, mssg.Edge{Src: mssg.VertexID(i), Dst: mssg.VertexID(i + 1)})
	}
	if _, err := eng.IngestEdges(edges); err != nil {
		t.Fatal(err)
	}
	kh, err := mssg.KHop(eng, mssg.KHopConfig{Source: 0, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if kh.Total != 3 {
		t.Fatalf("KHop total = %d, want 3", kh.Total)
	}
	comp, err := mssg.Component(eng, 2)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Size != 6 {
		t.Fatalf("component size = %d, want 6", comp.Size)
	}
}

func TestPublicGreedyClusterPolicy(t *testing.T) {
	greedy := mssg.NewGreedyCluster(0)
	eng, err := mssg.New(mssg.Config{
		Backends: 3,
		Backend:  "hashmap",
		Ingest: mssg.IngestConfig{
			AddReverse: true,
			Policy:     func() mssg.IngestPolicy { return greedy },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	edges := []mssg.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	if _, err := eng.IngestEdges(edges); err != nil {
		t.Fatal(err)
	}
	if greedy.DirectorySize() == 0 {
		t.Fatal("greedy directory empty after ingestion")
	}
	res, err := eng.BFS(mssg.BFSConfig{Source: 0, Dest: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.PathLength != 3 {
		t.Fatalf("BFS over greedy-clustered graph = %+v", res)
	}
}

func TestPublicFilteredBFS(t *testing.T) {
	eng, err := mssg.New(mssg.Config{Backends: 2, Backend: "hashmap", Ingest: mssg.IngestConfig{AddReverse: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.IngestEdges([]mssg.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	for _, db := range eng.Databases() {
		db.SetMetadata(0, 7)
		db.SetMetadata(1, 7)
		db.SetMetadata(2, 9)
	}
	res, err := eng.BFS(mssg.BFSConfig{
		Source: 0, Dest: 2,
		Filter: mssg.MetaFilter{Op: mssg.FilterEqual, Ref: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("filtered BFS crossed a type boundary: %+v", res)
	}
}
